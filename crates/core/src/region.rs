//! Regions and areas — the paper's annotation model (§2, §3.1).
//!
//! A *region* is an inclusive `[start, end]` range of 64-bit positions
//! into the annotated BLOB (`start ≤ end`; the datatype only needs a full
//! ordering — file offsets, time codes and word positions all map onto
//! `i64`). An *area* is a set of one or more regions that neither overlap
//! nor touch each other; area-annotations with multiple regions describe
//! non-contiguous objects (files reconstructed from scattered disk blocks,
//! discontinuous grammatical constructs).

use std::fmt;

use crate::error::StandoffError;

/// An inclusive `[start, end]` region over the BLOB position space.
///
/// ```
/// use standoff_core::Region;
/// let shot = Region::new(0, 8)?;      // video shot, seconds 0–8
/// let track = Region::new(0, 31)?;    // music track, seconds 0–31
/// assert!(track.contains(&shot));
/// assert!(shot.overlaps(&track));
/// # Ok::<(), standoff_core::StandoffError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(C)]
pub struct Region {
    pub start: i64,
    pub end: i64,
}

const _: () = assert!(std::mem::size_of::<Region>() == 16);

// A region's memory layout (`repr(C)`: two little-endian `i64`s on LE
// targets) equals its wire layout, so region columns in SOSN v3 snapshots
// mount zero-copy. Note the `start ≤ end` invariant is *semantic* — the
// mount path re-validates it per region (see `RegionIndex::from_storage`).
unsafe impl standoff_xml::column::Pod for Region {
    const WIDTH: usize = 16;

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        Region {
            start: i64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            end: i64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    #[inline]
    fn write_le<W: std::io::Write>(self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.start.to_le_bytes())?;
        w.write_all(&self.end.to_le_bytes())
    }
}

impl Region {
    /// Create a region; fails unless `start ≤ end`.
    pub fn new(start: i64, end: i64) -> Result<Region, StandoffError> {
        if start <= end {
            Ok(Region { start, end })
        } else {
            Err(StandoffError::InvalidRegion { start, end })
        }
    }

    /// Region containment per §3.1:
    /// `r1.start ≤ r2.start ≤ r2.end ≤ r1.end` (self is `r1`).
    #[inline]
    pub fn contains(&self, other: &Region) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Region overlap per §3.1:
    /// `r1.start ≤ r2.end ∧ r1.end ≥ r2.start` (both inclusive).
    #[inline]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start <= other.end && self.end >= other.start
    }

    /// Do the regions touch (adjacent without sharing a position)? Used by
    /// area validation: an area's regions may neither overlap nor touch.
    #[inline]
    pub fn touches(&self, other: &Region) -> bool {
        // Saturating: positions may sit at the i64 boundary.
        other.start == self.end.saturating_add(1) || self.start == other.end.saturating_add(1)
    }

    /// Number of positions covered (inclusive width — never zero).
    #[inline]
    pub fn width(&self) -> u64 {
        (self.end - self.start) as u64 + 1
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.start, self.end)
    }
}

/// An area-annotation's geometry: one or more regions, sorted by start,
/// pairwise non-overlapping and non-touching.
///
/// Multi-region areas describe non-contiguous objects; containment is
/// ∀∃ and overlap ∃∃ over the region sets (paper §3.1):
///
/// ```
/// use standoff_core::{Area, Region};
/// // A gene's exonic area and a spliced read.
/// let gene = Area::try_new(vec![Region::new(100, 199)?, Region::new(300, 449)?])?;
/// let read = Area::try_new(vec![Region::new(180, 199)?, Region::new(300, 329)?])?;
/// assert!(gene.contains(&read));
/// // A read dangling into the intron overlaps but is not contained.
/// let dangling = Area::single(190, 230)?;
/// assert!(gene.overlaps(&dangling) && !gene.contains(&dangling));
/// // The introns are the gaps of the exonic area.
/// assert_eq!(gene.gaps().unwrap().regions(), &[Region::new(200, 299)?]);
/// # Ok::<(), standoff_core::StandoffError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Area {
    regions: Vec<Region>,
}

impl Area {
    /// Single-region area (the attribute representation always yields
    /// these).
    pub fn single(start: i64, end: i64) -> Result<Area, StandoffError> {
        Ok(Area {
            regions: vec![Region::new(start, end)?],
        })
    }

    /// Build an area from regions, validating the §3.1 constraints:
    /// non-empty, and after sorting, pairwise non-overlapping and
    /// non-touching.
    pub fn try_new(mut regions: Vec<Region>) -> Result<Area, StandoffError> {
        if regions.is_empty() {
            return Err(StandoffError::EmptyArea);
        }
        regions.sort();
        for w in regions.windows(2) {
            if w[0].overlaps(&w[1]) || w[0].touches(&w[1]) {
                return Err(StandoffError::AreaRegionsConflict { a: w[0], b: w[1] });
            }
        }
        Ok(Area { regions })
    }

    /// Build an area from arbitrary regions by sorting and coalescing
    /// overlapping or touching ones. Useful for synthetic workload
    /// generation; parsed annotations use the strict [`Area::try_new`].
    pub fn normalized(mut regions: Vec<Region>) -> Result<Area, StandoffError> {
        if regions.is_empty() {
            return Err(StandoffError::EmptyArea);
        }
        regions.sort();
        let mut out: Vec<Region> = Vec::with_capacity(regions.len());
        for r in regions {
            match out.last_mut() {
                Some(last) if last.overlaps(&r) || last.touches(&r) => {
                    last.end = last.end.max(r.end);
                }
                _ => out.push(r),
            }
        }
        Ok(Area { regions: out })
    }

    /// The regions, sorted by start.
    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions (≥ 1).
    #[inline]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Is this a contiguous (single-region) area?
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.regions.len() == 1
    }

    /// Smallest region covering the whole area.
    pub fn bounding(&self) -> Region {
        Region {
            start: self.regions.first().unwrap().start,
            end: self.regions.last().unwrap().end,
        }
    }

    /// Area containment per §3.1 (self is `a1`):
    /// `∀ r2 ∈ a2 ∃ r1 ∈ a1 : r1.start ≤ r2.start ≤ r2.end ≤ r1.end`.
    ///
    /// Both region lists are sorted and internally disjoint, so a single
    /// merge pass decides the ∀∃ in `O(|a1| + |a2|)`.
    pub fn contains(&self, other: &Area) -> bool {
        let mut i = 0;
        'outer: for r2 in &other.regions {
            while i < self.regions.len() {
                let r1 = &self.regions[i];
                if r1.end < r2.start {
                    // r1 entirely before r2: no later r2' can be inside it
                    // either (r2' start only grows). Advance r1.
                    i += 1;
                } else if r1.contains(r2) {
                    // r2 placed; keep r1 — the next r2' may also fit in it.
                    continue 'outer;
                } else {
                    // r1 starts after r2, or only partially covers it: no
                    // region of a1 can contain r2 (they are disjoint and
                    // sorted), so the ∀ fails.
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Area overlap per §3.1:
    /// `∃ r2 ∈ a2, r1 ∈ a1 : r1.start ≤ r2.end ∧ r1.end ≥ r2.start`.
    pub fn overlaps(&self, other: &Area) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.regions.len() && j < other.regions.len() {
            let (r1, r2) = (&self.regions[i], &other.regions[j]);
            if r1.overlaps(r2) {
                return true;
            }
            if r1.end < r2.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Total number of positions covered by the area.
    pub fn covered(&self) -> u64 {
        self.regions.iter().map(Region::width).sum()
    }

    /// Set union of the covered positions (coalescing adjacency).
    pub fn union(&self, other: &Area) -> Area {
        let mut all: Vec<Region> = self
            .regions
            .iter()
            .chain(other.regions.iter())
            .copied()
            .collect();
        all.sort();
        Area::normalized(all).expect("non-empty by construction")
    }

    /// Set intersection of the covered positions; `None` when disjoint.
    pub fn intersection(&self, other: &Area) -> Option<Area> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.regions.len() && j < other.regions.len() {
            let (r1, r2) = (&self.regions[i], &other.regions[j]);
            let lo = r1.start.max(r2.start);
            let hi = r1.end.min(r2.end);
            if lo <= hi {
                out.push(Region { start: lo, end: hi });
            }
            if r1.end < r2.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        if out.is_empty() {
            None
        } else {
            // Pieces are disjoint but may touch (e.g. intersecting with
            // two adjacent-in-other pieces); normalize coalesces.
            Some(Area::normalized(out).expect("non-empty"))
        }
    }

    /// Set difference (`self \ other`) of the covered positions; `None`
    /// when nothing remains.
    pub fn difference(&self, other: &Area) -> Option<Area> {
        let mut out: Vec<Region> = Vec::new();
        let mut j = 0;
        for r1 in &self.regions {
            let mut cur = r1.start;
            // Walk the subtrahend pieces overlapping r1.
            while j < other.regions.len() && other.regions[j].end < r1.start {
                j += 1;
            }
            let mut k = j;
            while k < other.regions.len() && other.regions[k].start <= r1.end {
                let r2 = &other.regions[k];
                if r2.start > cur {
                    out.push(Region {
                        start: cur,
                        end: r2.start - 1,
                    });
                }
                cur = cur.max(r2.end.saturating_add(1));
                k += 1;
            }
            if cur <= r1.end {
                out.push(Region {
                    start: cur,
                    end: r1.end,
                });
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Area::normalized(out).expect("non-empty"))
        }
    }

    /// The gaps between this area's regions (empty for contiguous areas):
    /// the positions "inside" the annotation's bounding range but not
    /// covered — e.g. the unallocated space between a carved file's
    /// fragments, or a gene's introns.
    pub fn gaps(&self) -> Option<Area> {
        if self.regions.len() < 2 {
            return None;
        }
        let mut out = Vec::with_capacity(self.regions.len() - 1);
        for w in self.regions.windows(2) {
            out.push(Region {
                start: w[0].end + 1,
                end: w[1].start - 1,
            });
        }
        Some(Area { regions: out })
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for r in &self.regions {
            if !first {
                f.write_str("+")?;
            }
            first = false;
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(rs: &[(i64, i64)]) -> Area {
        Area::try_new(
            rs.iter()
                .map(|&(s, e)| Region::new(s, e).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn region_validation() {
        assert!(Region::new(5, 5).is_ok());
        assert!(Region::new(5, 4).is_err());
    }

    #[test]
    fn region_contains_is_inclusive() {
        let outer = Region::new(0, 10).unwrap();
        assert!(outer.contains(&Region::new(0, 10).unwrap()));
        assert!(outer.contains(&Region::new(3, 7).unwrap()));
        assert!(!outer.contains(&Region::new(3, 11).unwrap()));
    }

    #[test]
    fn region_overlap_is_inclusive_at_endpoints() {
        let a = Region::new(0, 10).unwrap();
        assert!(
            a.overlaps(&Region::new(10, 20).unwrap()),
            "shared endpoint overlaps"
        );
        assert!(!a.overlaps(&Region::new(11, 20).unwrap()));
        assert!(a.overlaps(&Region::new(-5, 0).unwrap()));
    }

    #[test]
    fn figure1_example_relationships() {
        // U2 music [0,31]; shots: Intro [0,8], Interview [8,64], Outro [64,94].
        let u2 = area(&[(0, 31)]);
        let intro = area(&[(0, 8)]);
        let interview = area(&[(8, 64)]);
        let outro = area(&[(64, 94)]);
        assert!(u2.contains(&intro));
        assert!(!u2.contains(&interview));
        assert!(!u2.contains(&outro));
        assert!(u2.overlaps(&intro));
        assert!(u2.overlaps(&interview));
        assert!(!u2.overlaps(&outro));
    }

    #[test]
    fn area_rejects_overlapping_or_touching_regions() {
        let r = |s, e| Region::new(s, e).unwrap();
        assert!(Area::try_new(vec![r(0, 5), r(5, 9)]).is_err(), "overlap");
        assert!(Area::try_new(vec![r(0, 5), r(6, 9)]).is_err(), "touching");
        assert!(Area::try_new(vec![r(0, 5), r(7, 9)]).is_ok());
        assert!(Area::try_new(vec![]).is_err(), "empty");
    }

    #[test]
    fn normalized_coalesces() {
        let r = |s, e| Region::new(s, e).unwrap();
        let a = Area::normalized(vec![r(6, 9), r(0, 5), r(20, 30)]).unwrap();
        assert_eq!(a.regions(), &[r(0, 9), r(20, 30)]);
    }

    #[test]
    fn multi_region_containment_is_forall_exists() {
        // a1 = [0,10] + [20,30]
        let a1 = area(&[(0, 10), (20, 30)]);
        // both pieces inside pieces of a1 → contained
        assert!(a1.contains(&area(&[(2, 4), (25, 28)])));
        // second piece sticks out → not contained
        assert!(!a1.contains(&area(&[(2, 4), (25, 35)])));
        // piece in the gap → not contained
        assert!(!a1.contains(&area(&[(12, 14)])));
        // two candidate pieces inside the SAME a1 region → contained
        assert!(a1.contains(&area(&[(1, 3), (5, 7)])));
    }

    #[test]
    fn multi_region_overlap_is_exists_exists() {
        let a1 = area(&[(0, 10), (20, 30)]);
        assert!(a1.overlaps(&area(&[(15, 22)])), "overlaps second piece");
        assert!(!a1.overlaps(&area(&[(12, 18)])), "falls in the gap");
        assert!(a1.overlaps(&area(&[(12, 18), (29, 40)])));
    }

    #[test]
    fn containment_implies_overlap() {
        let a1 = area(&[(0, 10), (20, 30)]);
        let a2 = area(&[(3, 5), (22, 24)]);
        assert!(a1.contains(&a2));
        assert!(a1.overlaps(&a2));
    }

    #[test]
    fn contains_is_not_symmetric() {
        let big = area(&[(0, 100)]);
        let small = area(&[(10, 20)]);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        // overlap is symmetric:
        assert!(big.overlaps(&small) && small.overlaps(&big));
    }

    #[test]
    fn bounding_region() {
        let a = area(&[(5, 10), (20, 30)]);
        assert_eq!(a.bounding(), Region::new(5, 30).unwrap());
    }

    #[test]
    fn display_formats() {
        assert_eq!(area(&[(1, 2), (4, 9)]).to_string(), "[1,2]+[4,9]");
    }

    #[test]
    fn covered_counts_positions() {
        assert_eq!(area(&[(0, 9)]).covered(), 10);
        assert_eq!(area(&[(0, 9), (20, 24)]).covered(), 15);
    }

    #[test]
    fn union_coalesces() {
        let a = area(&[(0, 10), (40, 50)]);
        let b = area(&[(5, 20), (22, 30)]);
        assert_eq!(a.union(&b), area(&[(0, 20), (22, 30), (40, 50)]));
        // Union is commutative.
        assert_eq!(a.union(&b), b.union(&a));
        // Touching pieces coalesce: [0,10] ∪ [11,20] = [0,20].
        let c = area(&[(11, 20)]);
        assert_eq!(area(&[(0, 10)]).union(&c), area(&[(0, 20)]));
    }

    #[test]
    fn intersection_cases() {
        let a = area(&[(0, 10), (20, 30)]);
        assert_eq!(
            a.intersection(&area(&[(5, 25)])),
            Some(area(&[(5, 10), (20, 25)]))
        );
        assert_eq!(a.intersection(&area(&[(12, 18)])), None);
        assert_eq!(a.intersection(&a), Some(a.clone()));
    }

    #[test]
    fn difference_cases() {
        let a = area(&[(0, 10), (20, 30)]);
        // Punch a hole in the first region, clip the second.
        assert_eq!(
            a.difference(&area(&[(3, 5), (25, 40)])),
            Some(area(&[(0, 2), (6, 10), (20, 24)]))
        );
        assert_eq!(a.difference(&a), None, "difference with self is empty");
        assert_eq!(
            a.difference(&area(&[(100, 200)])),
            Some(a.clone()),
            "disjoint subtrahend changes nothing"
        );
    }

    #[test]
    fn difference_and_intersection_partition() {
        // a = (a ∩ b) ⊎ (a \ b) position-wise.
        let a = area(&[(0, 50), (70, 90)]);
        let b = area(&[(10, 75)]);
        let inter = a.intersection(&b).unwrap();
        let diff = a.difference(&b).unwrap();
        assert_eq!(inter.covered() + diff.covered(), a.covered());
        assert!(inter.intersection(&diff).is_none());
        assert_eq!(inter.union(&diff), a);
    }

    #[test]
    fn gaps_are_the_introns() {
        let gene = area(&[(100, 199), (300, 449), (600, 699)]);
        assert_eq!(gene.gaps(), Some(area(&[(200, 299), (450, 599)])));
        assert_eq!(area(&[(0, 10)]).gaps(), None);
    }
}
