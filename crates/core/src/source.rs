//! [`RegionSource`]: the logically-merged region view the join kernels
//! consume.
//!
//! A pure snapshot layer is a [`RegionIndex`] and nothing else; a
//! writable overlay adds *retractions* (annotations hidden by a delta
//! layer until the next compaction). The joins must see one doc-order
//! region stream either way, without the pure path paying for the
//! possibility of a delta. `RegionSource` is that seam:
//!
//! * with no retractions (`is_pure()`), every accessor delegates to the
//!   index and the borrowing accessors return the index's own columns —
//!   the zero-copy `PodCol` fast path is byte-for-byte the read-only
//!   code path;
//! * with retractions, entry streams are filtered into caller scratch
//!   and per-node lookups of retracted annotations come back empty —
//!   exactly what a compacted snapshot (which drops the retracted
//!   subtrees) would produce.
//!
//! Inserted annotations never appear here: an overlay mounts its
//! pending inserts as a sibling *delta document* with its own pure
//! `RegionSource`, and the engine's existing multi-document join
//! machinery merges the streams in document order.

use crate::index::{IndexStats, RegionEntry, RegionIndex};
use crate::region::Region;

/// A region index plus an optional retraction set, presented as one
/// logically-merged region stream. Cheap to copy (two fat pointers).
#[derive(Clone, Copy, Debug)]
pub struct RegionSource<'a> {
    index: &'a RegionIndex,
    /// Strictly ascending pre ranks whose annotations are retracted.
    /// Empty on the pure path.
    retracted: &'a [u32],
}

impl<'a> RegionSource<'a> {
    /// A pure view: the index as-is, nothing retracted.
    #[inline]
    pub fn from_index(index: &'a RegionIndex) -> RegionSource<'a> {
        RegionSource {
            index,
            retracted: &[],
        }
    }

    /// A merged view hiding the annotations at `retracted` pre ranks
    /// (strictly ascending; typically subtree-expanded by the caller so
    /// a retracted annotation's nested annotations vanish with it).
    pub fn with_retractions(index: &'a RegionIndex, retracted: &'a [u32]) -> RegionSource<'a> {
        debug_assert!(
            retracted.windows(2).all(|w| w[0] < w[1]),
            "retractions must be strictly ascending"
        );
        RegionSource { index, retracted }
    }

    /// Is this the zero-copy pure-snapshot path?
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.retracted.is_empty()
    }

    /// The underlying index.
    #[inline]
    pub fn index(&self) -> &'a RegionIndex {
        self.index
    }

    /// The retraction set (strictly ascending pre ranks).
    #[inline]
    pub fn retractions(&self) -> &'a [u32] {
        self.retracted
    }

    /// Is the annotation at `pre` retracted?
    #[inline]
    pub fn is_retracted(&self, pre: u32) -> bool {
        !self.retracted.is_empty() && self.retracted.binary_search(&pre).is_ok()
    }

    /// The regions of the annotation at `pre`, ascending; empty when
    /// unannotated *or retracted*.
    #[inline]
    pub fn regions_of(&self, pre: u32) -> &'a [Region] {
        if self.is_retracted(pre) {
            &[]
        } else {
            self.index.regions_of(pre)
        }
    }

    /// Number of visible regions of the annotation at `pre`.
    #[inline]
    pub fn region_count(&self, pre: u32) -> usize {
        if self.is_retracted(pre) {
            0
        } else {
            self.index.region_count(pre)
        }
    }

    /// Upper bound on regions per annotation. Retraction can only lower
    /// the true maximum; the index's bound stays sound for the ∀∃
    /// post-processing dispatch.
    #[inline]
    pub fn max_regions(&self) -> u32 {
        self.index.max_regions()
    }

    /// The visible `start|end|id` entry stream in `(start, end, id)`
    /// order. Pure sources return the index's own column — no copy;
    /// otherwise the filtered stream is materialized into `scratch`.
    pub fn entries_in<'s>(&self, scratch: &'s mut Vec<RegionEntry>) -> &'s [RegionEntry]
    where
        'a: 's,
    {
        if self.is_pure() {
            return self.index.entries();
        }
        scratch.clear();
        scratch.extend(
            self.index
                .entries()
                .iter()
                .filter(|e| !self.is_retracted(e.id))
                .copied(),
        );
        scratch
    }

    /// Entries of the candidate nodes (strictly ascending pre ranks),
    /// in entry order, into `out` (cleared first) — the candidate-driven
    /// access path of §4.3, minus anything retracted. The retraction
    /// filter is a single post-pass gated on `is_pure()`, never a
    /// per-entry check inside the scan kernel, so the pure-snapshot path
    /// runs the exact index kernel.
    pub fn candidates_into(&self, candidates: &[u32], out: &mut Vec<RegionEntry>) {
        self.index.candidates_into(candidates, out);
        if !self.is_pure() {
            out.retain(|e| !self.is_retracted(e.id));
        }
    }

    /// [`RegionSource::candidates_into`] with caller-owned kernel scratch
    /// (dense bitset, morsel policy, counters) — the join hot path.
    pub fn candidates_into_with(
        &self,
        candidates: &[u32],
        scratch: &mut crate::index::CandidateScratch,
        out: &mut Vec<RegionEntry>,
    ) {
        self.index.candidates_into_with(candidates, scratch, out);
        if !self.is_pure() {
            out.retain(|e| !self.is_retracted(e.id));
        }
    }

    /// The visible annotated nodes, strictly ascending. Pure sources
    /// return the index's CSR node column directly.
    pub fn annotated_nodes_in<'s>(&self, scratch: &'s mut Vec<u32>) -> &'s [u32]
    where
        'a: 's,
    {
        if self.is_pure() {
            return self.index.annotated_nodes();
        }
        scratch.clear();
        scratch.extend(
            self.index
                .annotated_nodes()
                .iter()
                .filter(|&&n| !self.is_retracted(n))
                .copied(),
        );
        scratch
    }

    /// Index statistics with retracted annotations (and their entries)
    /// subtracted — what cost-based strategy selection should see.
    pub fn stats(&self) -> IndexStats {
        let mut stats = self.index.stats();
        if !self.is_pure() {
            let mut annotated = 0u64;
            let mut entries = 0u64;
            for &pre in self.retracted {
                let n = self.index.region_count(pre) as u64;
                if n > 0 {
                    annotated += 1;
                    entries += n;
                }
            }
            stats.annotated = stats.annotated.saturating_sub(annotated);
            stats.entries = stats.entries.saturating_sub(entries);
        }
        stats
    }
}

impl<'a> From<&'a RegionIndex> for RegionSource<'a> {
    fn from(index: &'a RegionIndex) -> RegionSource<'a> {
        RegionSource::from_index(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Area;

    fn index() -> RegionIndex {
        RegionIndex::from_areas(&[
            (2, Area::single(0, 9).unwrap()),
            (4, Area::single(10, 19).unwrap()),
            (6, Area::single(5, 14).unwrap()),
        ])
    }

    #[test]
    fn pure_source_borrows_index_columns() {
        let idx = index();
        let src = RegionSource::from_index(&idx);
        assert!(src.is_pure());
        let mut scratch = Vec::new();
        let entries = src.entries_in(&mut scratch);
        assert!(std::ptr::eq(entries.as_ptr(), idx.entries().as_ptr()));
        assert!(scratch.is_empty(), "pure path must not materialize");
        let mut nodes = Vec::new();
        let annotated = src.annotated_nodes_in(&mut nodes);
        assert!(std::ptr::eq(
            annotated.as_ptr(),
            idx.annotated_nodes().as_ptr()
        ));
    }

    #[test]
    fn retraction_hides_annotation_everywhere() {
        let idx = index();
        let retracted = [4u32];
        let src = RegionSource::with_retractions(&idx, &retracted);
        assert!(!src.is_pure());
        assert!(src.is_retracted(4) && !src.is_retracted(2));
        assert!(src.regions_of(4).is_empty());
        assert_eq!(src.region_count(4), 0);
        assert_eq!(src.regions_of(2), idx.regions_of(2));

        let mut scratch = Vec::new();
        let entries = src.entries_in(&mut scratch);
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.id != 4));

        let mut nodes = Vec::new();
        assert_eq!(src.annotated_nodes_in(&mut nodes), &[2, 6]);

        let mut cands = Vec::new();
        src.candidates_into(&[2, 4, 6], &mut cands);
        assert!(cands.iter().all(|e| e.id != 4));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn stats_subtract_retracted() {
        let idx = index();
        let retracted = [4u32, 100];
        let src = RegionSource::with_retractions(&idx, &retracted);
        let stats = src.stats();
        assert_eq!(stats.annotated, 2);
        assert_eq!(stats.entries, 2);
        // A retraction of an unannotated node subtracts nothing.
        assert_eq!(RegionSource::from_index(&idx).stats().annotated, 3);
    }
}
