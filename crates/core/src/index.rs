//! The region index (paper §4.3).
//!
//! A per-document index of all area-annotations: a `start|end|id` table
//! *clustered on start*, where `id` is the annotation node's pre-order
//! rank (MonetDB/XQuery's node identifier). Non-contiguous areas repeat
//! the same id in several entries. A second, node-ordered view supports
//! context-region fetch and the candidate-sequence intersection that the
//! element-name index feeds into StandOff steps with name tests.

use std::io;

use standoff_xml::column::{Pod, PodCol};
use standoff_xml::{wire, Document, NodeKind};

use crate::config::StandoffConfig;
use crate::error::StandoffError;
use crate::region::{Area, Region};

/// One row of the region index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct RegionEntry {
    pub start: i64,
    pub end: i64,
    /// Pre-order rank of the annotation element.
    pub id: u32,
}

const _: () = assert!(std::mem::size_of::<RegionEntry>() == 24);

// `repr(C)` gives `RegionEntry` a fixed 24-byte layout (4 trailing
// padding bytes, written as zeros and never read back), so entry columns
// in SOSN v3 snapshots mount zero-copy on little-endian targets.
unsafe impl Pod for RegionEntry {
    const WIDTH: usize = 24;

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        RegionEntry {
            start: i64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            end: i64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            id: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
        }
    }

    #[inline]
    fn write_le<W: io::Write>(self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.start.to_le_bytes())?;
        w.write_all(&self.end.to_le_bytes())?;
        w.write_all(&self.id.to_le_bytes())?;
        w.write_all(&[0u8; 4]) // padding, for the in-place view
    }
}

/// Summary statistics of one or more region indexes — the cost-model
/// inputs the query optimizer consults at plan time (per-step strategy
/// selection, explain-time cardinality estimates).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IndexStats {
    /// Number of indexes aggregated into this summary.
    pub indexes: u32,
    /// Total region entries (rows of the start-clustered table).
    pub entries: u64,
    /// Total annotated nodes.
    pub annotated: u64,
    /// Largest per-annotation region count across all indexes (1 ⇒ every
    /// area is contiguous and the fast single-region paths apply).
    pub max_regions: u32,
}

impl IndexStats {
    /// Fold another summary into this one.
    pub fn merge(&mut self, other: IndexStats) {
        self.indexes += other.indexes;
        self.entries += other.entries;
        self.annotated += other.annotated;
        self.max_regions = self.max_regions.max(other.max_regions);
    }
}

/// Per-document region index.
///
/// ```
/// use standoff_core::{RegionIndex, StandoffConfig};
/// let doc = standoff_xml::parse_document(
///     r#"<d><a start="0" end="9"/><b start="3" end="5"/></d>"#)?;
/// let index = RegionIndex::build(&doc, &StandoffConfig::default())?;
/// assert_eq!(index.len(), 2);
/// assert_eq!(index.entries()[0].start, 0);     // clustered on start
/// assert_eq!(index.regions_of(2)[0].end, 9);   // node view: <a> is pre 2
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct RegionIndex {
    /// All region entries, sorted by `(start, end, id)` — the clustering
    /// the merge joins scan.
    entries: PodCol<RegionEntry>,
    /// Annotated node pre ranks, sorted (document order).
    node_ids: PodCol<u32>,
    /// CSR offsets into `node_regions`, parallel to `node_ids` (+1).
    node_offsets: PodCol<u32>,
    /// Regions per node, each node's slice sorted by start.
    node_regions: PodCol<Region>,
    /// Largest region count of any single annotation (1 ⇒ the fast
    /// single-region post-processing path applies).
    max_regions: u32,
}

/// Borrowed raw columns of a [`RegionIndex`] — the snapshot writer's
/// view of the index (each slice is dumped as one aligned section).
pub struct RegionIndexStorage<'a> {
    pub entries: &'a [RegionEntry],
    pub node_ids: &'a [u32],
    pub node_offsets: &'a [u32],
    pub node_regions: &'a [Region],
    pub max_regions: u32,
}

/// Accumulates `(pre, area)` pushes, then finalizes into the clustered
/// column form (the build-time backend; mounts skip this entirely).
#[derive(Default)]
struct IndexAccum {
    entries: Vec<RegionEntry>,
    node_ids: Vec<u32>,
    node_offsets: Vec<u32>,
    node_regions: Vec<Region>,
    max_regions: u32,
}

impl IndexAccum {
    fn new() -> IndexAccum {
        IndexAccum {
            node_offsets: vec![0],
            ..Default::default()
        }
    }

    fn push_area(&mut self, pre: u32, area: &Area) {
        for r in area.regions() {
            self.entries.push(RegionEntry {
                start: r.start,
                end: r.end,
                id: pre,
            });
            self.node_regions.push(*r);
        }
        self.node_ids.push(pre);
        self.node_offsets.push(self.node_regions.len() as u32);
        self.max_regions = self.max_regions.max(area.region_count() as u32);
    }

    fn finish(mut self) -> RegionIndex {
        self.entries.sort_by_key(|e| (e.start, e.end, e.id));
        RegionIndex {
            entries: self.entries.into(),
            node_ids: self.node_ids.into(),
            node_offsets: self.node_offsets.into(),
            node_regions: self.node_regions.into(),
            max_regions: self.max_regions,
        }
    }
}

impl RegionIndex {
    /// Build the index for one document under a configuration.
    pub fn build(doc: &Document, config: &StandoffConfig) -> Result<RegionIndex, StandoffError> {
        config.validate()?;
        let mut accum = IndexAccum::new();
        for pre in 0..doc.node_count() as u32 {
            if doc.kind(pre) != NodeKind::Element {
                continue;
            }
            if let Some(area) = config.area_of(doc, pre)? {
                accum.push_area(pre, &area);
            }
        }
        Ok(accum.finish())
    }

    /// Build directly from `(pre, area)` pairs (synthetic workloads and
    /// tests). Pairs must be in ascending pre order.
    pub fn from_areas(pairs: &[(u32, Area)]) -> RegionIndex {
        let mut accum = IndexAccum::new();
        for (pre, area) in pairs {
            debug_assert!(accum.node_ids.last().is_none_or(|&last| last < *pre));
            accum.push_area(*pre, area);
        }
        accum.finish()
    }

    /// All entries, clustered on start.
    #[inline]
    pub fn entries(&self) -> &[RegionEntry] {
        &self.entries
    }

    /// Number of region entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Annotated node pre ranks in document order.
    #[inline]
    pub fn annotated_nodes(&self) -> &[u32] {
        &self.node_ids
    }

    /// Largest per-annotation region count.
    #[inline]
    pub fn max_regions(&self) -> u32 {
        self.max_regions
    }

    /// This index's summary statistics (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            indexes: 1,
            entries: self.entries.len() as u64,
            annotated: self.node_ids.len() as u64,
            max_regions: self.max_regions,
        }
    }

    /// The regions of the annotation at `pre` (empty slice if `pre` is not
    /// annotated).
    pub fn regions_of(&self, pre: u32) -> &[Region] {
        match self.node_ids.binary_search(&pre) {
            Ok(k) => {
                &self.node_regions[self.node_offsets[k] as usize..self.node_offsets[k + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Region count of the annotation at `pre` (0 if not annotated).
    pub fn region_count(&self, pre: u32) -> usize {
        self.regions_of(pre).len()
    }

    /// The area of the annotation at `pre`, if annotated.
    pub fn area_of(&self, pre: u32) -> Option<Area> {
        let rs = self.regions_of(pre);
        if rs.is_empty() {
            None
        } else {
            Some(Area::try_new(rs.to_vec()).expect("index stores valid areas"))
        }
    }

    /// Candidate-sequence intersection (§4.3): restrict the index to the
    /// given candidate node ids (sorted ascending), *preserving the start
    /// ordering* of the region index. This is how an element-name test is
    /// pushed down into a StandOff step.
    ///
    /// Adaptive (see [`node_view_preferred`]): selective candidate sets
    /// walk the CSR node view candidate-by-candidate — never touching
    /// the full entries table — and restore the `(start, end, id)`
    /// clustering only when the gathered runs actually violate it
    /// (single-region annotations laid out in document order, the
    /// common case, come out sorted for free). Broad candidate sets
    /// keep the single scan of the start-clustered table. The crossover
    /// mirrors MonetDB's choice between positional gather and scan.
    pub fn candidates_for(&self, sorted_node_pres: &[u32]) -> Vec<RegionEntry> {
        let mut out = Vec::new();
        self.candidates_into(sorted_node_pres, &mut out);
        out
    }

    /// [`RegionIndex::candidates_for`] into a reusable buffer (cleared
    /// first). Cold callers use this form; the join hot path goes through
    /// [`RegionIndex::candidates_into_with`] so the dense bitset and the
    /// kernel counters persist across iterations.
    pub fn candidates_into(&self, sorted_node_pres: &[u32], out: &mut Vec<RegionEntry>) {
        let mut scratch = CandidateScratch::default();
        self.candidates_into_with(sorted_node_pres, &mut scratch, out);
    }

    /// [`RegionIndex::candidates_into`] with caller-owned scratch state:
    /// the reusable dense bitset, the morsel policy, and the kernel
    /// counters ([`KernelStats`]) all live in `scratch`, so the hot path
    /// allocates nothing per call and the executor can report which
    /// representation actually ran.
    pub fn candidates_into_with(
        &self,
        sorted_node_pres: &[u32],
        scratch: &mut CandidateScratch,
        out: &mut Vec<RegionEntry>,
    ) {
        debug_assert!(sorted_node_pres.windows(2).all(|w| w[0] < w[1]));
        out.clear();
        if self.prefers_node_view(sorted_node_pres.len()) {
            out.reserve(sorted_node_pres.len());
            let mut sorted = true;
            let mut last = (i64::MIN, i64::MIN, 0u32);
            for &pre in sorted_node_pres {
                for r in self.regions_of(pre) {
                    let key = (r.start, r.end, pre);
                    sorted &= last < key;
                    last = key;
                    out.push(RegionEntry {
                        start: r.start,
                        end: r.end,
                        id: pre,
                    });
                }
            }
            // Sortedness fast path: the per-node runs arrive in pre
            // order, which usually coincides with start order (always in
            // the nesting-free single-region layouts) — detected on the
            // fly, never assumed, so the merge-back sort runs only when
            // the clustering was actually violated.
            if !sorted {
                out.sort_unstable_by_key(|e| (e.start, e.end, e.id));
            }
        } else {
            scan_filter_into(&self.entries, sorted_node_pres, scratch, out);
        }
    }

    /// Would [`RegionIndex::candidates_for`] take the node-view gather
    /// path for a candidate set of this size? Exposed so the query
    /// planner's explain output and runtime statistics can report the
    /// same decision the index makes.
    #[inline]
    pub fn prefers_node_view(&self, candidate_count: usize) -> bool {
        node_view_preferred(candidate_count, self.entries.len() as u64)
    }

    /// The scan path of [`RegionIndex::candidates_for`], unconditionally —
    /// the pre-inversion behavior, kept as the ablation baseline for
    /// benches and the property suite.
    #[doc(hidden)]
    pub fn candidates_for_scan(&self, sorted_node_pres: &[u32]) -> Vec<RegionEntry> {
        debug_assert!(sorted_node_pres.windows(2).all(|w| w[0] < w[1]));
        self.entries
            .iter()
            .filter(|e| sorted_node_pres.binary_search(&e.id).is_ok())
            .copied()
            .collect()
    }

    /// The scan path with the representation forced to the dense bitset,
    /// unconditionally — the ablation counterpart of
    /// [`RegionIndex::candidates_for_scan`] for the `dense_scaling`
    /// crossover measurement and the property suite.
    #[doc(hidden)]
    pub fn candidates_for_dense_scan(&self, sorted_node_pres: &[u32]) -> Vec<RegionEntry> {
        debug_assert!(sorted_node_pres.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::new();
        if sorted_node_pres.is_empty() {
            return out;
        }
        let mut dense = DenseCandidates::default();
        dense.fill(sorted_node_pres);
        dense_scan_chunks(&self.entries, &dense, None, &mut out);
        out
    }

    /// The node-view gather path, unconditionally — the third leg of the
    /// `dense_scaling` crossover measurement.
    #[doc(hidden)]
    pub fn candidates_for_gather(&self, sorted_node_pres: &[u32]) -> Vec<RegionEntry> {
        debug_assert!(sorted_node_pres.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::new();
        let mut sorted = true;
        let mut last = (i64::MIN, i64::MIN, 0u32);
        for &pre in sorted_node_pres {
            for r in self.regions_of(pre) {
                let key = (r.start, r.end, pre);
                sorted &= last < key;
                last = key;
                out.push(RegionEntry {
                    start: r.start,
                    end: r.end,
                    id: pre,
                });
            }
        }
        if !sorted {
            out.sort_unstable_by_key(|e| (e.start, e.end, e.id));
        }
        out
    }

    /// Memory footprint estimate in bytes (used by the bench harness to
    /// report index sizes alongside document sizes).
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<RegionEntry>()
            + self.node_ids.len() * 4
            + self.node_offsets.len() * 4
            + self.node_regions.len() * std::mem::size_of::<Region>()
    }

    // ---- binary persistence (the snapshot hooks of `standoff-store`) ----
    //
    // Layout (version 1, little-endian, "SORX" magic):
    //
    // ```text
    // magic "SORX" | u32 version
    // u32 entry-count  | entry-count × (i64 start, i64 end, u32 id)
    // u32 node-count   | node-count × u32 node id
    // (node-count + 1) × u32 CSR offset
    // region-total × (i64 start, i64 end)     (region-total = last offset)
    // u32 max-regions
    // ```

    /// Serialize the index. Loading with [`RegionIndex::read_from`] skips
    /// [`RegionIndex::build`] entirely — the point of snapshotting.
    pub fn write_into<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(INDEX_MAGIC)?;
        wire::write_u32(w, INDEX_VERSION)?;
        wire::write_u32(w, self.entries.len() as u32)?;
        for e in self.entries.iter() {
            wire::write_i64(w, e.start)?;
            wire::write_i64(w, e.end)?;
            wire::write_u32(w, e.id)?;
        }
        wire::write_u32(w, self.node_ids.len() as u32)?;
        for &id in self.node_ids.iter() {
            wire::write_u32(w, id)?;
        }
        for &off in self.node_offsets.iter() {
            wire::write_u32(w, off)?;
        }
        for r in self.node_regions.iter() {
            wire::write_i64(w, r.start)?;
            wire::write_i64(w, r.end)?;
        }
        wire::write_u32(w, self.max_regions)?;
        Ok(())
    }

    /// Deserialize an index written by [`RegionIndex::write_into`].
    ///
    /// Every structural invariant is re-validated (see
    /// [`RegionIndex::from_storage`]) — so a corrupted snapshot fails
    /// cleanly instead of corrupting join results.
    pub fn read_from<R: io::Read>(r: &mut R) -> io::Result<RegionIndex> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != INDEX_MAGIC {
            return Err(index_data_err("not a region index (bad magic)"));
        }
        if wire::read_u32(r)? != INDEX_VERSION {
            return Err(index_data_err("unsupported region-index version"));
        }
        let entry_count = wire::read_u32(r)? as usize;
        let mut entries = Vec::with_capacity(wire::capacity_hint(entry_count));
        for _ in 0..entry_count {
            entries.push(RegionEntry {
                start: wire::read_i64(r)?,
                end: wire::read_i64(r)?,
                id: wire::read_u32(r)?,
            });
        }
        let node_count = wire::read_u32(r)? as usize;
        let mut node_ids = Vec::with_capacity(wire::capacity_hint(node_count));
        for _ in 0..node_count {
            node_ids.push(wire::read_u32(r)?);
        }
        let mut node_offsets = Vec::with_capacity(wire::capacity_hint(node_count + 1));
        for _ in 0..=node_count {
            node_offsets.push(wire::read_u32(r)?);
        }
        let region_total = *node_offsets.last().unwrap_or(&u32::MAX) as usize;
        if region_total != entry_count {
            return Err(index_data_err("entry count disagrees with region CSR"));
        }
        let mut node_regions = Vec::with_capacity(wire::capacity_hint(region_total));
        for _ in 0..region_total {
            node_regions.push(Region {
                start: wire::read_i64(r)?,
                end: wire::read_i64(r)?,
            });
        }
        let max_regions = wire::read_u32(r)?;
        RegionIndex::from_storage(
            entries.into(),
            node_ids.into(),
            node_offsets.into(),
            node_regions.into(),
            max_regions,
        )
    }

    /// Assemble an index from raw (possibly buffer-backed) columns,
    /// re-validating **every** structural invariant: clustering order,
    /// node/CSR consistency, per-annotation region validity (the §3.1
    /// area constraints, checked without allocating), the stored
    /// max-regions statistic, and the entry ↔ node-view bijection. This
    /// is the single trust boundary of both the legacy stream decode and
    /// the SOSN v3 zero-copy mount — mounted indexes are used as-is by
    /// the join executor, never re-checked downstream.
    pub fn from_storage(
        entries: PodCol<RegionEntry>,
        node_ids: PodCol<u32>,
        node_offsets: PodCol<u32>,
        node_regions: PodCol<Region>,
        max_regions: u32,
    ) -> io::Result<RegionIndex> {
        if !entries
            .windows(2)
            .all(|w| (w[0].start, w[0].end, w[0].id) < (w[1].start, w[1].end, w[1].id))
        {
            return Err(index_data_err("entries not clustered on (start, end, id)"));
        }
        if !node_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(index_data_err("node ids not strictly ascending"));
        }
        if node_offsets.len() != node_ids.len() + 1 {
            return Err(index_data_err("region CSR length mismatch"));
        }
        if node_offsets[0] != 0 || !node_offsets.windows(2).all(|w| w[0] < w[1]) {
            // Strictly increasing: every annotated node has ≥ 1 region.
            return Err(index_data_err("region CSR offsets not increasing from 0"));
        }
        if *node_offsets.last().unwrap() as usize != entries.len()
            || node_regions.len() != entries.len()
        {
            return Err(index_data_err("entry count disagrees with region CSR"));
        }
        if node_regions.iter().any(|r| r.start > r.end) {
            return Err(index_data_err("bad region: start > end"));
        }
        let mut found_max = 0u32;
        for k in 0..node_ids.len() {
            let slice = &node_regions[node_offsets[k] as usize..node_offsets[k + 1] as usize];
            // The §3.1 area constraints, allocation-free: sorted by
            // start, pairwise non-overlapping and non-touching.
            if !slice.windows(2).all(|w| w[0].start < w[1].start) {
                return Err(index_data_err("node regions not sorted by start"));
            }
            if !slice
                .windows(2)
                .all(|w| w[1].start > w[0].end.saturating_add(1))
            {
                return Err(index_data_err(&format!(
                    "node {} regions invalid: regions overlap or touch",
                    node_ids[k]
                )));
            }
            found_max = found_max.max(slice.len() as u32);
        }
        if max_regions != found_max {
            return Err(index_data_err("stored max-regions is inconsistent"));
        }
        let index = RegionIndex {
            entries,
            node_ids,
            node_offsets,
            node_regions,
            max_regions,
        };
        // Entries are unique (strict clustering) and equinumerous with the
        // node view; membership of each entry closes the bijection.
        for e in index.entries.iter() {
            let valid = index
                .regions_of(e.id)
                .binary_search_by_key(&(e.start, e.end), |r| (r.start, r.end))
                .is_ok();
            if !valid {
                return Err(index_data_err("entry has no matching node-view region"));
            }
        }
        Ok(index)
    }

    /// Borrow the raw columns (the snapshot writer's hook).
    pub fn storage(&self) -> RegionIndexStorage<'_> {
        RegionIndexStorage {
            entries: &self.entries,
            node_ids: &self.node_ids,
            node_offsets: &self.node_offsets,
            node_regions: &self.node_regions,
            max_regions: self.max_regions,
        }
    }

    /// Are the bulk columns zero-copy views over a mounted snapshot
    /// buffer? Benches and tests use this to assert the mount path
    /// actually mounted.
    pub fn is_mounted(&self) -> bool {
        self.entries.is_view() && self.node_regions.is_view()
    }
}

/// The gather-vs-scan cost rule of the candidate intersection: walking
/// the node view costs ~`C log C` (gather plus the worst-case re-sort),
/// the scan costs one pass over all `E` entries — gather wins while
/// `C log C < E`. A free function so the planner can evaluate the rule
/// from statistics alone, without an index at hand.
///
/// Calibration (bench-report `dense_scaling` group, 50k-entry table):
/// the measured gather/scan break-even sits between C = 4 000 and
/// C = 5 000 candidates — gather wins 2.3× at C = 1 000, ties at
/// C = 4 000, loses 1.4–1.7× from C = 5 000 — and the rule flips at
/// C ≈ 4 100, inside the measured bracket. No fudge factor needed.
#[inline]
pub fn node_view_preferred(candidate_count: usize, index_entries: u64) -> bool {
    let c = candidate_count;
    let gather_cost = (c as u64) * (usize::BITS - (c | 1).leading_zeros()) as u64;
    gather_cost < index_entries
}

/// Which materialization the scan kernel ran with (see [`CandidateSet`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateRepr {
    /// The sorted id list itself; membership is a binary search.
    Sparse,
    /// A u64-block bitset over the candidate pre range; membership is one
    /// masked bit test.
    Dense,
}

/// The candidate set as the scan kernel sees it: either today's sorted
/// id list ([`CandidateRepr::Sparse`]) or a bitset over the candidate
/// pre range ([`CandidateRepr::Dense`]), chosen per call by
/// [`dense_repr_preferred`].
pub enum CandidateSet<'a> {
    Sparse(&'a [u32]),
    Dense(&'a DenseCandidates),
}

impl CandidateSet<'_> {
    /// Which representation this is (what the counters report).
    #[inline]
    pub fn repr(&self) -> CandidateRepr {
        match self {
            CandidateSet::Sparse(_) => CandidateRepr::Sparse,
            CandidateSet::Dense(_) => CandidateRepr::Dense,
        }
    }

    /// Membership test — the per-entry predicate of the scan kernel.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        match self {
            CandidateSet::Sparse(ids) => ids.binary_search(&id).is_ok(),
            CandidateSet::Dense(bits) => bits.contains(id),
        }
    }
}

/// A u64-block bitset over the candidate pre range `[base, base + span)`.
/// Offsets outside the span test negative without branching: the word
/// index is clamped and the in-range flag is folded into the bit.
#[derive(Clone, Debug, Default)]
pub struct DenseCandidates {
    base: u32,
    span: u64,
    words: Vec<u64>,
}

impl DenseCandidates {
    /// (Re)build the bitset from a strictly ascending id list, reusing
    /// the word buffer. `sorted` must be non-empty.
    pub fn fill(&mut self, sorted: &[u32]) {
        debug_assert!(!sorted.is_empty());
        let base = sorted[0];
        let span = (*sorted.last().unwrap() - base) as u64 + 1;
        let words = span.div_ceil(64) as usize;
        self.words.clear();
        self.words.resize(words, 0);
        self.base = base;
        self.span = span;
        for &id in sorted {
            let off = id - base;
            self.words[(off >> 6) as usize] |= 1u64 << (off & 63);
        }
    }

    /// Branch-free membership test: clamped word load, bit shift, and an
    /// in-range mask — no data-dependent branches, so the chunked scan
    /// loop autovectorizes.
    #[inline(always)]
    pub fn contains(&self, id: u32) -> bool {
        let off = id.wrapping_sub(self.base) as u64;
        let w = ((off >> 6) as usize).min(self.words.len().saturating_sub(1));
        let bit = (self.words[w] >> (off & 63)) & 1;
        (bit & (off < self.span) as u64) != 0
    }
}

/// Counters of the candidate scan kernels — surfaced per query through
/// `join_stats()` so tests and the `stats` dump can assert which
/// mechanism actually ran (the 1-CPU bench container understates the
/// wall-clock story).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// Scan calls that ran with the dense bitset representation.
    pub repr_dense: u64,
    /// Scan calls that ran with the sparse list representation.
    pub repr_sparse: u64,
    /// 64-entry blocks processed by the dense kernel.
    pub dense_blocks: u64,
    /// Morsels dispatched to the worker pool (0 ⇒ every scan ran
    /// sequentially).
    pub morsels_dispatched: u64,
}

impl KernelStats {
    /// Fold another sample into this one.
    pub fn merge(&mut self, other: KernelStats) {
        self.repr_dense += other.repr_dense;
        self.repr_sparse += other.repr_sparse;
        self.dense_blocks += other.dense_blocks;
        self.morsels_dispatched += other.morsels_dispatched;
    }

    /// Take the accumulated counters, leaving zeros behind.
    pub fn take(&mut self) -> KernelStats {
        std::mem::take(self)
    }
}

/// Intra-query parallelism policy for the scan kernels: how many worker
/// threads a single candidate scan may fan out over. `threads == 1` (the
/// default) keeps every scan sequential.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MorselPolicy {
    pub threads: usize,
}

impl Default for MorselPolicy {
    fn default() -> MorselPolicy {
        MorselPolicy { threads: 1 }
    }
}

/// Entries per morsel: a multiple of the 64-entry kernel block, big
/// enough that per-morsel overhead (a buffer + an atomic fetch-add) is
/// noise, small enough that a 50k-entry table still splits ~12 ways.
pub const MORSEL_ENTRIES: usize = 4096;

/// Caller-owned scratch for [`RegionIndex::candidates_into_with`]: the
/// reusable dense bitset, the [`MorselPolicy`], and the accumulated
/// [`KernelStats`]. Lives inside the executor's `JoinScratch` so the
/// join hot path allocates nothing per iteration.
#[derive(Clone, Debug, Default)]
pub struct CandidateScratch {
    pub policy: MorselPolicy,
    pub stats: KernelStats,
    /// Cooperative evaluation budget, polled once per 64-entry kernel
    /// chunk and checked per morsel. `None` (the default) keeps the
    /// kernels budget-free apart from one hoisted `Option` test.
    pub budget: Option<crate::budget::Budget>,
    dense: DenseCandidates,
}

impl CandidateScratch {
    /// Pick the representation for `sorted` over an `index_entries`-row
    /// table, (re)building the bitset if dense wins. Bumps the repr
    /// counter for the choice.
    pub fn prepare<'a>(&'a mut self, sorted: &'a [u32], index_entries: u64) -> CandidateSet<'a> {
        let span = candidate_span(sorted);
        if dense_repr_preferred(sorted.len(), span, index_entries) {
            self.stats.repr_dense += 1;
            self.dense.fill(sorted);
            CandidateSet::Dense(&self.dense)
        } else {
            self.stats.repr_sparse += 1;
            CandidateSet::Sparse(sorted)
        }
    }
}

/// Pre-range span of a sorted candidate list (`last - first + 1`), the
/// bitset size `dense_repr_preferred` weighs against the probe savings.
#[inline]
pub fn candidate_span(sorted: &[u32]) -> u64 {
    match (sorted.first(), sorted.last()) {
        (Some(&first), Some(&last)) => (last - first) as u64 + 1,
        _ => 0,
    }
}

/// The scan path of the candidate intersection, representation-adaptive
/// and morsel-parallel. Appends matching entries to `out` in entry
/// (start-clustered) order regardless of representation or thread count:
/// morsels are contiguous entry ranges concatenated by morsel index.
fn scan_filter_into(
    entries: &[RegionEntry],
    sorted_node_pres: &[u32],
    scratch: &mut CandidateScratch,
    out: &mut Vec<RegionEntry>,
) {
    if sorted_node_pres.is_empty() || entries.is_empty() {
        return;
    }
    let policy = scratch.policy;
    let budget = scratch.budget.clone();
    let set = scratch.prepare(sorted_node_pres, entries.len() as u64);
    let mut blocks = 0u64;
    let mut morsels = 0u64;
    if policy.threads > 1 && entries.len() >= 2 * MORSEL_ENTRIES {
        let morsel_count = entries.len().div_ceil(MORSEL_ENTRIES);
        morsels = morsel_count as u64;
        let budget = budget.as_ref();
        let parts = crate::par::scatter(
            morsel_count,
            policy.threads,
            Vec::new,
            |buf: &mut Vec<RegionEntry>, m| {
                crate::fault::point("index.morsel");
                buf.clear();
                // A tripped budget makes remaining morsels no-ops; the
                // whole (partial) result is discarded by the evaluator
                // when it observes the trip reason.
                if budget.is_none_or(|b| b.check().is_ok()) {
                    scan_chunks(morsel(entries, m), &set, budget, buf);
                }
                std::mem::take(buf)
            },
        );
        for part in parts {
            out.extend_from_slice(&part);
        }
    } else {
        scan_chunks(entries, &set, budget.as_ref(), out);
    }
    if set.repr() == CandidateRepr::Dense {
        // The dense kernel visits every 64-entry block exactly once, so
        // the block count is determined by the table size — counted here
        // (not in the workers) to keep the counter exact under morsels.
        blocks = entries.len().div_ceil(SCAN_CHUNK) as u64;
    }
    scratch.stats.dense_blocks += blocks;
    scratch.stats.morsels_dispatched += morsels;
}

/// Entries of morsel `m` (fixed-size contiguous ranges of the table).
#[inline]
fn morsel(entries: &[RegionEntry], m: usize) -> &[RegionEntry] {
    let lo = m * MORSEL_ENTRIES;
    &entries[lo..entries.len().min(lo + MORSEL_ENTRIES)]
}

/// Kernel block width: one u64 of match bits per block.
const SCAN_CHUNK: usize = 64;

/// The chunked, branch-free scan kernel. For each 64-entry block it
/// computes a match bitmask with a data-independent inner loop (the
/// dense representation's membership test is a clamped load + bit test,
/// so the block compiles to straight-line autovectorizable code), then
/// materializes: an all-ones mask copies the whole block with
/// `extend_from_slice`, otherwise set bits are popped in order.
fn scan_chunks(
    entries: &[RegionEntry],
    set: &CandidateSet<'_>,
    budget: Option<&crate::budget::Budget>,
    out: &mut Vec<RegionEntry>,
) {
    match set {
        CandidateSet::Dense(bits) => dense_scan_chunks(entries, bits, budget, out),
        CandidateSet::Sparse(ids) => {
            for chunk in entries.chunks(SCAN_CHUNK) {
                if budget.is_some_and(|b| b.poll().is_some()) {
                    return;
                }
                out.extend(
                    chunk
                        .iter()
                        .filter(|e| ids.binary_search(&e.id).is_ok())
                        .copied(),
                );
            }
        }
    }
}

fn dense_scan_chunks(
    entries: &[RegionEntry],
    bits: &DenseCandidates,
    budget: Option<&crate::budget::Budget>,
    out: &mut Vec<RegionEntry>,
) {
    for chunk in entries.chunks(SCAN_CHUNK) {
        // One predictable branch per 64-entry block; the block body
        // below stays branch-free. A tripped budget abandons the scan —
        // partial output is discarded with the query.
        if budget.is_some_and(|b| b.poll().is_some()) {
            return;
        }
        let mut mask = 0u64;
        for (k, e) in chunk.iter().enumerate() {
            mask |= (bits.contains(e.id) as u64) << k;
        }
        if chunk.len() == SCAN_CHUNK && mask == u64::MAX {
            out.extend_from_slice(chunk);
        } else {
            while mask != 0 {
                out.push(chunk[mask.trailing_zeros() as usize]);
                mask &= mask - 1;
            }
        }
    }
}

/// The sparse-vs-dense representation rule for the scan path, in cost
/// units of one sparse probe (a binary-search step): the sparse scan
/// costs `E · log₂C` probe steps, the dense scan costs `E` bit tests
/// plus building the bitset (`span/64` word writes + `C` bit sets).
/// Dense wins when the probe savings pay for the build; sparse survives
/// only where the build dominates — few candidates strewn over a wide
/// id span against a small entry table.
///
/// Calibration (bench-report `dense_scaling` group, 50k-entry table,
/// candidate ids spanning the full table): the rule picks dense at
/// every benched density 1/781 … 1/2 and the measurement agrees — the
/// dense scan beats the sparse scan 2.7–5.8× there. The model's
/// *magnitude* overestimates that gap ~2× (a bit test is not quite
/// free relative to a cache-warm binary-search step), so the predicted
/// break-even sits a factor ~2 early; both paths cost within 2× of
/// each other in that band, so the misprediction is bounded.
#[inline]
pub fn dense_repr_preferred(candidate_count: usize, id_span: u64, index_entries: u64) -> bool {
    let c = candidate_count as u64;
    let log2c = (usize::BITS - (candidate_count | 1).leading_zeros()) as u64;
    let sparse_cost = index_entries.saturating_mul(log2c);
    let dense_cost = index_entries + id_span / 64 + c;
    dense_cost < sparse_cost
}

const INDEX_MAGIC: &[u8; 4] = b"SORX";
const INDEX_VERSION: u32 = 1;

fn index_data_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("region index: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::parse_document;

    fn figure1_index() -> (standoff_xml::Document, RegionIndex) {
        let doc = parse_document(
            r#"<sample>
                 <video>
                   <shot id="Intro" start="0" end="8"/>
                   <shot id="Interview" start="8" end="64"/>
                   <shot id="Outro" start="64" end="94"/>
                 </video>
                 <audio>
                   <music artist="U2" start="0" end="31"/>
                   <music artist="Bach" start="52" end="94"/>
                 </audio>
               </sample>"#,
        )
        .unwrap();
        let idx = RegionIndex::build(&doc, &StandoffConfig::default()).unwrap();
        (doc, idx)
    }

    #[test]
    fn entries_clustered_on_start() {
        let (_, idx) = figure1_index();
        assert_eq!(idx.len(), 5);
        let starts: Vec<i64> = idx.entries().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 0, 8, 52, 64]);
        // Ties on start break on (end, id): Intro [0,8] before U2 [0,31].
        assert_eq!(idx.entries()[0].end, 8);
        assert_eq!(idx.entries()[1].end, 31);
    }

    #[test]
    fn node_view_round_trips() {
        let (doc, idx) = figure1_index();
        let intro = doc.elements_named("shot")[0];
        assert_eq!(idx.regions_of(intro), &[Region::new(0, 8).unwrap()]);
        assert_eq!(idx.region_count(intro), 1);
        assert_eq!(
            idx.area_of(intro).unwrap().bounding(),
            Region::new(0, 8).unwrap()
        );
        // The <video> container itself has no regions.
        let video = doc.elements_named("video")[0];
        assert_eq!(idx.regions_of(video), &[]);
        assert_eq!(idx.area_of(video), None);
    }

    #[test]
    fn annotated_nodes_in_document_order() {
        let (_, idx) = figure1_index();
        let nodes = idx.annotated_nodes();
        assert_eq!(nodes.len(), 5);
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn candidate_intersection_preserves_start_order() {
        let (doc, idx) = figure1_index();
        let shots = doc.elements_named("shot");
        let cands = idx.candidates_for(shots);
        assert_eq!(cands.len(), 3);
        assert!(cands.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(cands.iter().all(|e| shots.contains(&e.id)));
    }

    /// Regression: `candidates_for` silently assumed its input was
    /// strictly ascending — unsorted input made the scan path's binary
    /// search skip candidates *without any diagnostic*. The invariant is
    /// debug-asserted (this test, which runs in CI's debug-assertions
    /// job); for the one caller whose input is externally produced (the
    /// element-name pushdown over snapshot-loaded indexes) the ordering
    /// is enforced when the snapshot is decoded (SOXD v2 rejects an
    /// out-of-order element index), so the slice is borrowed as-is.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "assertion failed")]
    fn unsorted_candidates_trip_the_debug_assert() {
        let (doc, idx) = figure1_index();
        let shots = doc.elements_named("shot");
        let unsorted: Vec<u32> = shots.iter().rev().copied().collect();
        let _ = idx.candidates_for(&unsorted);
    }

    /// Companion regression: input that arrives unsorted and is sorted
    /// by the caller first produces exactly the definitional result.
    #[test]
    fn caller_sorted_candidates_match_definitional_scan() {
        let (doc, idx) = figure1_index();
        let mut cands: Vec<u32> = doc
            .elements_named("shot")
            .iter()
            .rev() // arrives in reverse document order…
            .chain(doc.elements_named("music")) // …with a duplicate-prone mix
            .copied()
            .collect();
        cands.sort_unstable(); // …the caller-side fix
        cands.dedup();
        let got = idx.candidates_for(&cands);
        let want: Vec<RegionEntry> = idx
            .entries()
            .iter()
            .filter(|e| cands.binary_search(&e.id).is_ok())
            .copied()
            .collect();
        assert_eq!(got, want);
        assert_eq!(got.len(), 5); // 3 shots + 2 music annotations
    }

    /// The inverted (node-view) path must fire for sparse candidate sets
    /// and still return `(start, end, id)`-clustered entries — including
    /// for multi-region annotations, whose runs arrive per node and only
    /// coincidentally in start order.
    #[test]
    fn node_view_path_sorted_for_multi_region_annotations() {
        // Node 5's area starts before node 3's, so a per-node gather
        // emits runs out of start order and must re-sort.
        let pairs = vec![
            (
                3,
                Area::try_new(vec![
                    Region::new(50, 60).unwrap(),
                    Region::new(200, 210).unwrap(),
                ])
                .unwrap(),
            ),
            (
                5,
                Area::try_new(vec![
                    Region::new(0, 10).unwrap(),
                    Region::new(100, 110).unwrap(),
                ])
                .unwrap(),
            ),
            (7, Area::single(40, 45).unwrap()),
            (9, Area::single(300, 310).unwrap()),
            (11, Area::single(400, 410).unwrap()),
        ];
        let idx = RegionIndex::from_areas(&pairs);
        let cands = vec![3, 5, 7];
        assert!(
            idx.prefers_node_view(cands.len()),
            "3 candidates over a 7-entry table must take the node view"
        );
        let got = idx.candidates_for(&cands);
        assert_eq!(got.len(), 5);
        assert!(
            got.windows(2)
                .all(|w| (w[0].start, w[0].end, w[0].id) < (w[1].start, w[1].end, w[1].id)),
            "node-view gather must restore the start clustering: {got:?}"
        );
        assert_eq!(got, idx.candidates_for_scan(&cands), "paths must agree");
    }

    /// Both access paths agree on every candidate subset of a mixed
    /// index, through the reusable-buffer entry point.
    #[test]
    fn candidates_into_agrees_with_scan_for_all_subsets() {
        let (doc, idx) = figure1_index();
        let all: Vec<u32> = idx.annotated_nodes().to_vec();
        let mut buf = Vec::new();
        for mask in 0u32..(1 << all.len()) {
            let subset: Vec<u32> = all
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, &p)| p)
                .collect();
            idx.candidates_into(&subset, &mut buf);
            assert_eq!(buf, idx.candidates_for_scan(&subset), "mask {mask:#b}");
        }
        // Unannotated candidates simply contribute nothing.
        let video = doc.elements_named("video")[0];
        idx.candidates_into(&[video], &mut buf);
        assert!(buf.is_empty());
    }

    /// The cost rule: tiny candidate sets gather, huge ones scan.
    #[test]
    fn cost_rule_crossover() {
        assert!(node_view_preferred(1, 2));
        assert!(node_view_preferred(64, 100_000));
        assert!(!node_view_preferred(50_000, 100_000));
        assert!(!node_view_preferred(0, 0), "empty index: scan is free");
        let pairs: Vec<(u32, Area)> = (0..1000)
            .map(|k| (k, Area::single(k as i64 * 10, k as i64 * 10 + 5).unwrap()))
            .collect();
        let idx = RegionIndex::from_areas(&pairs);
        assert!(idx.prefers_node_view(8));
        assert!(!idx.prefers_node_view(900));
    }

    #[test]
    fn non_contiguous_areas_repeat_id() {
        let doc = parse_document(
            "<fs><file>\
               <region><start>0</start><end>9</end></region>\
               <region><start>100</start><end>199</end></region>\
             </file></fs>",
        )
        .unwrap();
        let idx = RegionIndex::build(&doc, &StandoffConfig::element_repr()).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.entries()[0].id, idx.entries()[1].id);
        assert_eq!(idx.max_regions(), 2);
        assert_eq!(idx.region_count(idx.entries()[0].id), 2);
    }

    #[test]
    fn empty_document_empty_index() {
        let doc = parse_document("<a><b/><c>x</c></a>").unwrap();
        let idx = RegionIndex::build(&doc, &StandoffConfig::default()).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.max_regions(), 0);
    }

    #[test]
    fn codec_round_trip() {
        let (_, idx) = figure1_index();
        let mut buf = Vec::new();
        idx.write_into(&mut buf).unwrap();
        let loaded = RegionIndex::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.entries(), idx.entries());
        assert_eq!(loaded.annotated_nodes(), idx.annotated_nodes());
        assert_eq!(loaded.max_regions(), idx.max_regions());
        for &pre in idx.annotated_nodes() {
            assert_eq!(loaded.regions_of(pre), idx.regions_of(pre));
        }
    }

    #[test]
    fn codec_multi_region_round_trip() {
        let doc = parse_document(
            "<fs><file>\
               <region><start>0</start><end>9</end></region>\
               <region><start>100</start><end>199</end></region>\
             </file></fs>",
        )
        .unwrap();
        let idx = RegionIndex::build(&doc, &StandoffConfig::element_repr()).unwrap();
        let mut buf = Vec::new();
        idx.write_into(&mut buf).unwrap();
        let loaded = RegionIndex::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.max_regions(), 2);
        assert_eq!(loaded.entries(), idx.entries());
    }

    #[test]
    fn codec_rejects_corruption() {
        let (_, idx) = figure1_index();
        let mut buf = Vec::new();
        idx.write_into(&mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(RegionIndex::read_from(&mut bad.as_slice()).is_err());
        // Truncations must fail, never panic.
        for cut in [0, 4, 8, buf.len() / 2, buf.len() - 1] {
            assert!(
                RegionIndex::read_from(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Arbitrary single-byte corruption either fails cleanly or decodes
        // to a still-valid index — never panics.
        for k in 8..buf.len() {
            let mut mutated = buf.clone();
            mutated[k] ^= 0xff;
            let _ = RegionIndex::read_from(&mut mutated.as_slice());
        }
    }

    #[test]
    fn from_areas_matches_build() {
        let (doc, built) = figure1_index();
        let cfg = StandoffConfig::default();
        let pairs: Vec<(u32, Area)> = (0..doc.node_count() as u32)
            .filter(|&p| doc.kind(p) == NodeKind::Element)
            .filter_map(|p| cfg.area_of(&doc, p).unwrap().map(|a| (p, a)))
            .collect();
        let idx = RegionIndex::from_areas(&pairs);
        assert_eq!(idx.entries(), built.entries());
        assert_eq!(idx.annotated_nodes(), built.annotated_nodes());
    }
}
