//! Property tests for the region index: both candidate-intersection
//! paths (selective gather vs full scan) must agree, and the index must
//! faithfully represent the annotations it was built from.

use proptest::prelude::*;

use standoff_core::{
    Area, CandidateScratch, MorselPolicy, Region, RegionEntry, RegionIndex, StandoffConfig,
};
use standoff_xml::DocumentBuilder;

/// Random single/multi-region annotations with controlled geometry.
fn annotations_strategy() -> impl Strategy<Value = Vec<Vec<(i64, i64)>>> {
    prop::collection::vec(
        prop::collection::vec((0i64..500, 0i64..40), 1..3).prop_map(|raw| {
            let mut rs: Vec<(i64, i64)> = raw.into_iter().map(|(s, l)| (s, s + l)).collect();
            rs.sort_unstable();
            let mut out: Vec<(i64, i64)> = Vec::new();
            for (s, e) in rs {
                match out.last() {
                    Some(&(_, pe)) if s <= pe + 1 => {}
                    _ => out.push((s, e)),
                }
            }
            out
        }),
        0..40,
    )
}

fn build_index(annotations: &[Vec<(i64, i64)>]) -> (Vec<u32>, RegionIndex) {
    let pairs: Vec<(u32, Area)> = annotations
        .iter()
        .enumerate()
        .map(|(k, rs)| {
            let area = Area::try_new(
                rs.iter()
                    .map(|&(s, e)| Region::new(s, e).unwrap())
                    .collect(),
            )
            .unwrap();
            // Synthetic pre ranks: 2, 4, 6, ... (gaps on purpose).
            ((k as u32 + 1) * 2, area)
        })
        .collect();
    let pres = pairs.iter().map(|p| p.0).collect();
    (pres, RegionIndex::from_areas(&pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The adaptive gather path and the scan path of `candidates_for`
    /// return identical entry sequences for every selectivity.
    #[test]
    fn intersection_paths_agree(
        annotations in annotations_strategy(),
        picks in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let (pres, index) = build_index(&annotations);
        if pres.is_empty() {
            return Ok(());
        }
        let mut candidates: Vec<u32> = picks
            .iter()
            .map(|&p| pres[p as usize % pres.len()])
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let fast = index.candidates_for(&candidates);
        // Reference: the definitional scan.
        let slow: Vec<RegionEntry> = index
            .entries()
            .iter()
            .filter(|e| candidates.binary_search(&e.id).is_ok())
            .copied()
            .collect();
        prop_assert_eq!(fast, slow);
    }

    /// Index round-trip: every annotation's regions come back through
    /// both views, and the entry table is exactly the multiset of all
    /// regions clustered on start.
    #[test]
    fn index_round_trips_annotations(annotations in annotations_strategy()) {
        let (pres, index) = build_index(&annotations);
        // Node view.
        for (pre, rs) in pres.iter().zip(&annotations) {
            let got: Vec<(i64, i64)> = index
                .regions_of(*pre)
                .iter()
                .map(|r| (r.start, r.end))
                .collect();
            prop_assert_eq!(&got, rs);
        }
        // Entry view: clustered on (start, end, id) and complete.
        let entries = index.entries();
        prop_assert!(entries
            .windows(2)
            .all(|w| (w[0].start, w[0].end, w[0].id) <= (w[1].start, w[1].end, w[1].id)));
        let total: usize = annotations.iter().map(|rs| rs.len()).sum();
        prop_assert_eq!(entries.len(), total);
        // max_regions is the true maximum.
        let max = annotations.iter().map(|rs| rs.len()).max().unwrap_or(0);
        prop_assert_eq!(index.max_regions() as usize, max);
    }

    /// Every candidate representation — the adaptive entry point, the
    /// forced sparse scan, the forced dense-bitset scan, and the forced
    /// node-view gather — returns byte-identical entry sequences, and
    /// the threaded (morsel-policy) path agrees with the sequential one
    /// regardless of thread count.
    #[test]
    fn candidate_representations_agree(
        annotations in annotations_strategy(),
        picks in prop::collection::vec(any::<u8>(), 0..64),
        threads in 1usize..8,
    ) {
        let (pres, index) = build_index(&annotations);
        if pres.is_empty() {
            return Ok(());
        }
        let mut candidates: Vec<u32> = picks
            .iter()
            .map(|&p| pres[p as usize % pres.len()])
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let adaptive = index.candidates_for(&candidates);
        prop_assert_eq!(&adaptive, &index.candidates_for_scan(&candidates));
        prop_assert_eq!(&adaptive, &index.candidates_for_dense_scan(&candidates));
        prop_assert_eq!(&adaptive, &index.candidates_for_gather(&candidates));

        let mut scratch = CandidateScratch::default();
        scratch.policy = MorselPolicy { threads };
        let mut threaded = Vec::new();
        index.candidates_into_with(&candidates, &mut scratch, &mut threaded);
        prop_assert_eq!(&adaptive, &threaded);
    }

    /// Unknown nodes have no regions; annotated nodes are reported in
    /// document order.
    #[test]
    fn node_view_consistency(annotations in annotations_strategy()) {
        let (pres, index) = build_index(&annotations);
        prop_assert!(index.annotated_nodes().windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(index.annotated_nodes(), &pres[..]);
        // Odd pre ranks were never annotated.
        for odd in [1u32, 3, 5, 99] {
            prop_assert!(index.regions_of(odd).is_empty());
            prop_assert_eq!(index.region_count(odd), 0);
        }
    }
}

/// Deterministic check that both intersection paths are actually
/// exercised: tiny candidate sets take the gather path, huge ones the
/// scan path — forced by construction.
#[test]
fn both_paths_execute() {
    let mut b = DocumentBuilder::new();
    b.start_element("d");
    for k in 0..2000 {
        b.start_element("a");
        b.attribute("start", &(k * 3).to_string());
        b.attribute("end", &(k * 3 + 1).to_string());
        b.end_element();
    }
    b.end_element();
    let doc = b.finish().unwrap();
    let index = RegionIndex::build(&doc, &StandoffConfig::default()).unwrap();
    let all = doc.elements_named("a");

    // Selective: 3 nodes → gather path.
    let few = [all[10], all[500], all[1999]];
    let got = index.candidates_for(&few);
    assert_eq!(got.len(), 3);
    assert!(got.windows(2).all(|w| w[0].start <= w[1].start));

    // Broad: everything → scan path; equals the full index.
    let got = index.candidates_for(all);
    assert_eq!(got, index.entries());
}

/// Deterministic check that the morsel pool actually engages on a table
/// big enough to split, and that its document-order merge is
/// byte-identical to the sequential scan for every thread count.
#[test]
fn morsel_split_is_bytewise_identical() {
    let mut b = DocumentBuilder::new();
    b.start_element("d");
    for k in 0..20_000i64 {
        b.start_element("a");
        b.attribute("start", &(k * 2).to_string());
        b.attribute("end", &(k * 2 + 1).to_string());
        b.end_element();
    }
    b.end_element();
    let doc = b.finish().unwrap();
    let index = RegionIndex::build(&doc, &StandoffConfig::default()).unwrap();
    // Every other element: dense enough for the bitset, selective enough
    // that the result is not just the whole table.
    let candidates: Vec<u32> = doc.elements_named("a").iter().step_by(2).copied().collect();

    let sequential = index.candidates_for_scan(&candidates);
    for threads in [2usize, 4, 8] {
        let mut scratch = CandidateScratch::default();
        scratch.policy = MorselPolicy { threads };
        let mut got = Vec::new();
        index.candidates_into_with(&candidates, &mut scratch, &mut got);
        assert_eq!(got, sequential, "threads={threads}");
        assert_eq!(scratch.stats.repr_dense, 1, "threads={threads}");
        assert!(
            scratch.stats.morsels_dispatched >= 2,
            "threads={threads}: expected a real split, got {:?}",
            scratch.stats
        );
        assert!(scratch.stats.dense_blocks > 0);
    }

    // threads == 1 must not spawn or split at all.
    let mut scratch = CandidateScratch::default();
    let mut got = Vec::new();
    index.candidates_into_with(&candidates, &mut scratch, &mut got);
    assert_eq!(got, sequential);
    assert_eq!(scratch.stats.morsels_dispatched, 0);
}
