//! Property-based equivalence of the four StandOff join strategies.
//!
//! The naive nested-loop join applies the §3.1 predicates literally and
//! serves as the oracle. The Basic and Loop-Lifted StandOff MergeJoins
//! must produce identical results on arbitrary region configurations —
//! overlapping, nested, duplicated, multi-iteration, with and without
//! candidate restrictions, in both region representations.

use proptest::prelude::*;

use standoff_core::join::merge::{ll_select_narrow, ll_select_narrow_heap};
use standoff_core::join::CtxEntry;
use standoff_core::{
    evaluate_standoff_join, IterNode, JoinInput, RegionEntry, RegionIndex, StandoffAxis,
    StandoffStrategy,
};
use standoff_xml::DocumentBuilder;

/// A generated annotation: node with 1..=3 regions.
#[derive(Clone, Debug)]
struct GenAnnotation {
    regions: Vec<(i64, i64)>,
}

fn annotation_strategy(max_pos: i64, multi: bool) -> impl Strategy<Value = GenAnnotation> {
    let max_regions = if multi { 3 } else { 1 };
    prop::collection::vec((0..max_pos, 0..20i64), 1..=max_regions).prop_map(move |raw| {
        // Convert (start, len) pairs into disjoint, non-touching regions
        // by sorting and dropping conflicting ones.
        let mut regions: Vec<(i64, i64)> = raw
            .into_iter()
            .map(|(s, l)| (s, (s + l).min(max_pos + 30)))
            .collect();
        regions.sort_unstable();
        let mut out: Vec<(i64, i64)> = Vec::new();
        for (s, e) in regions {
            match out.last() {
                Some(&(_, pe)) if s <= pe + 1 => {} // would overlap/touch: drop
                _ => out.push((s, e)),
            }
        }
        GenAnnotation { regions: out }
    })
}

/// Build a flat document `<doc><a .../><a .../>...</doc>` whose elements
/// carry the generated areas, and the matching region index.
fn build(annotations: &[GenAnnotation], multi: bool) -> (standoff_xml::Document, RegionIndex) {
    let mut b = DocumentBuilder::new();
    b.start_element("doc");
    for a in annotations {
        b.start_element("a");
        if multi {
            for &(s, e) in &a.regions {
                b.start_element("region");
                b.start_element("start");
                b.text(&s.to_string());
                b.end_element();
                b.start_element("end");
                b.text(&e.to_string());
                b.end_element();
                b.end_element();
            }
        } else {
            let (s, e) = a.regions[0];
            b.attribute("start", &s.to_string());
            b.attribute("end", &e.to_string());
        }
        b.end_element();
    }
    b.end_element();
    let doc = b.finish().unwrap();
    let config = if multi {
        standoff_core::StandoffConfig::element_repr()
    } else {
        standoff_core::StandoffConfig::default()
    };
    let index = RegionIndex::build(&doc, &config).unwrap();
    (doc, index)
}

fn run_all_strategies(
    annotations: Vec<GenAnnotation>,
    ctx_picks: Vec<(u32, usize)>,
    cand_picks: Option<Vec<usize>>,
    multi: bool,
) {
    if annotations.is_empty() {
        return;
    }
    let (doc, index) = build(&annotations, multi);
    let nodes = doc.elements_named("a").to_vec();

    // Context: (iter, node) pairs, grouped by iter, doc order within iter.
    let mut context: Vec<IterNode> = ctx_picks
        .iter()
        .map(|&(iter, k)| IterNode {
            iter: iter % 3,
            node: nodes[k % nodes.len()],
        })
        .collect();
    context.sort_unstable();
    context.dedup();

    let candidates: Option<Vec<u32>> = cand_picks.map(|picks| {
        let mut c: Vec<u32> = picks.iter().map(|&k| nodes[k % nodes.len()]).collect();
        c.sort_unstable();
        c.dedup();
        c
    });

    let iter_domain = [0, 1, 2];
    let input = JoinInput {
        doc: &doc,
        index: (&index).into(),
        ctx_index: None,
        context: &context,
        candidates: candidates.as_deref(),
        iter_domain: &iter_domain,
    };

    for axis in StandoffAxis::ALL {
        let oracle =
            evaluate_standoff_join(axis, StandoffStrategy::NaiveWithCandidates, &input, None);
        for strategy in [
            StandoffStrategy::NaiveNoCandidates,
            StandoffStrategy::BasicMergeJoin,
            StandoffStrategy::LoopLiftedMergeJoin,
        ] {
            // The no-candidates baseline ignores the candidate
            // restriction by design; only compare when none is set.
            if strategy == StandoffStrategy::NaiveNoCandidates && candidates.is_some() {
                continue;
            }
            let got = evaluate_standoff_join(axis, strategy, &input, None);
            assert_eq!(
                got, oracle,
                "{axis} under {strategy} diverges from the naive oracle\n\
                 annotations: {annotations:?}\ncontext: {context:?}\ncandidates: {candidates:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single-region annotations (attribute representation): all
    /// strategies agree on all four axes.
    #[test]
    fn strategies_agree_single_region(
        annotations in prop::collection::vec(annotation_strategy(120, false), 1..24),
        ctx in prop::collection::vec((0u32..3, 0usize..24), 0..12),
        cands in prop::option::of(prop::collection::vec(0usize..24, 0..16)),
    ) {
        run_all_strategies(annotations, ctx, cands, false);
    }

    /// Multi-region annotations (element representation): the ∀∃
    /// containment and ∃∃ overlap semantics agree across strategies.
    #[test]
    fn strategies_agree_multi_region(
        annotations in prop::collection::vec(annotation_strategy(80, true), 1..16),
        ctx in prop::collection::vec((0u32..3, 0usize..16), 0..10),
        cands in prop::option::of(prop::collection::vec(0usize..16, 0..12)),
    ) {
        run_all_strategies(annotations, ctx, cands, true);
    }

    /// Structural invariants of every result: sorted, duplicate-free,
    /// rejects are exact complements of selects over the candidate
    /// universe.
    #[test]
    fn rejects_complement_selects(
        annotations in prop::collection::vec(annotation_strategy(100, false), 1..20),
        ctx in prop::collection::vec((0u32..2, 0usize..20), 0..10),
    ) {
        let (doc, index) = build(&annotations, false);
        let nodes = doc.elements_named("a").to_vec();
        let mut context: Vec<IterNode> = ctx
            .iter()
            .map(|&(iter, k)| IterNode { iter: iter % 2, node: nodes[k % nodes.len()] })
            .collect();
        context.sort_unstable();
        context.dedup();
        let iter_domain = [0, 1];
        let input = JoinInput {
            doc: &doc,
            index: (&index).into(),
            ctx_index: None,
            context: &context,
            candidates: None,
            iter_domain: &iter_domain,
        };
        for (sel, rej) in [
            (StandoffAxis::SelectNarrow, StandoffAxis::RejectNarrow),
            (StandoffAxis::SelectWide, StandoffAxis::RejectWide),
        ] {
            let s = evaluate_standoff_join(sel, StandoffStrategy::LoopLiftedMergeJoin, &input, None);
            let r = evaluate_standoff_join(rej, StandoffStrategy::LoopLiftedMergeJoin, &input, None);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "select sorted+unique");
            prop_assert!(r.windows(2).all(|w| w[0] < w[1]), "reject sorted+unique");
            // Per iteration: select ∪ reject = universe, disjoint.
            let universe = input.candidate_universe();
            for &iter in &iter_domain {
                let sel_nodes: Vec<u32> =
                    s.iter().filter(|e| e.iter == iter).map(|e| e.node).collect();
                let rej_nodes: Vec<u32> =
                    r.iter().filter(|e| e.iter == iter).map(|e| e.node).collect();
                let mut union: Vec<u32> = sel_nodes.iter().chain(&rej_nodes).copied().collect();
                union.sort_unstable();
                prop_assert_eq!(&union, &universe, "select ⊎ reject = candidates (iter {})", iter);
            }
        }
    }

    /// The §5 heap-based active list yields the same deduplicated
    /// matches as the sorted-list implementation of Listing 1.
    #[test]
    fn heap_active_list_equals_sorted_list(
        raw_ctx in prop::collection::vec((0u32..4, 0i64..200, 0i64..60), 0..40),
        raw_cands in prop::collection::vec((0i64..220, 0i64..50), 0..40),
    ) {
        let mut context: Vec<CtxEntry> = raw_ctx
            .iter()
            .enumerate()
            .map(|(k, &(iter, start, len))| CtxEntry {
                iter,
                node: k as u32,
                start,
                end: start + len,
            })
            .collect();
        context.sort_by_key(|c| (c.start, c.end, c.iter, c.node));
        let mut candidates: Vec<RegionEntry> = raw_cands
            .iter()
            .enumerate()
            .map(|(k, &(start, len))| RegionEntry {
                start,
                end: start + len,
                id: k as u32,
            })
            .collect();
        candidates.sort_by_key(|e| (e.start, e.end, e.id));

        let dedup = |mut v: Vec<(u32, u32)>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        let list = dedup(
            ll_select_narrow(&context, &candidates, false, None)
                .into_iter()
                .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
                .collect(),
        );
        let heap = dedup(
            ll_select_narrow_heap(&context, &candidates)
                .into_iter()
                .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
                .collect(),
        );
        prop_assert_eq!(list, heap);
    }

    /// Narrow results are always a subset of wide results (containment
    /// implies overlap).
    #[test]
    fn narrow_subset_of_wide(
        annotations in prop::collection::vec(annotation_strategy(100, true), 1..16),
        ctx in prop::collection::vec((0u32..2, 0usize..16), 1..8),
    ) {
        let (doc, index) = build(&annotations, true);
        let nodes = doc.elements_named("a").to_vec();
        let mut context: Vec<IterNode> = ctx
            .iter()
            .map(|&(iter, k)| IterNode { iter: iter % 2, node: nodes[k % nodes.len()] })
            .collect();
        context.sort_unstable();
        context.dedup();
        let iter_domain = [0, 1];
        let input = JoinInput {
            doc: &doc,
            index: (&index).into(),
            ctx_index: None,
            context: &context,
            candidates: None,
            iter_domain: &iter_domain,
        };
        let narrow = evaluate_standoff_join(
            StandoffAxis::SelectNarrow, StandoffStrategy::LoopLiftedMergeJoin, &input, None);
        let wide = evaluate_standoff_join(
            StandoffAxis::SelectWide, StandoffStrategy::LoopLiftedMergeJoin, &input, None);
        for e in &narrow {
            prop_assert!(wide.contains(e), "{e:?} selected by narrow but not wide");
        }
    }

    /// One [`JoinScratch`] reused across many differently shaped joins —
    /// axes × strategies × candidate restrictions, back to back — must
    /// behave exactly like a fresh scratch per join: no state may leak
    /// between invocations through the shared buffers.
    #[test]
    fn shared_scratch_never_leaks_between_joins(
        annotations in prop::collection::vec(annotation_strategy(100, true), 1..12),
        ctx in prop::collection::vec((0u32..3, 0usize..12), 0..8),
        cands in prop::option::of(prop::collection::vec(0usize..12, 0..8)),
    ) {
        let (doc, index) = build(&annotations, true);
        let nodes = doc.elements_named("a").to_vec();
        let mut context: Vec<IterNode> = ctx
            .iter()
            .map(|&(iter, k)| IterNode { iter: iter % 3, node: nodes[k % nodes.len()] })
            .collect();
        context.sort_unstable();
        context.dedup();
        let candidates: Option<Vec<u32>> = cands.map(|picks| {
            let mut c: Vec<u32> = picks.iter().map(|&k| nodes[k % nodes.len()]).collect();
            c.sort_unstable();
            c.dedup();
            c
        });
        let iter_domain = [0, 1, 2];
        let mut shared = standoff_core::join::JoinScratch::default();
        for axis in StandoffAxis::ALL {
            for strategy in [
                StandoffStrategy::BasicMergeJoin,
                StandoffStrategy::LoopLiftedMergeJoin,
            ] {
                // Alternate restricted and unrestricted inputs so the
                // shared buffers see shrinking *and* growing workloads.
                for with_cands in [true, false] {
                    let input = JoinInput {
                        doc: &doc,
                        index: (&index).into(),
                        ctx_index: None,
                        context: &context,
                        candidates: if with_cands { candidates.as_deref() } else { None },
                        iter_domain: &iter_domain,
                    };
                    let fresh = evaluate_standoff_join(axis, strategy, &input, None);
                    let reused = standoff_core::join::evaluate_standoff_join_with(
                        axis, strategy, &input, None, &mut shared);
                    prop_assert_eq!(
                        &reused, &fresh,
                        "{} under {} with shared scratch diverges", axis, strategy
                    );
                }
            }
        }
    }
}
