//! Built-in function library.
//!
//! All functions are loop-lifted: they consume and produce `iter|pos|item`
//! tables and are evaluated once per scope. Aggregates (`count`, `sum`,
//! `avg`, …) produce a value for *every* iteration of the scope, including
//! iterations whose argument group is empty — the table-algebra equivalent
//! of `count(()) = 0`.
//!
//! The four StandOff joins (`select-narrow($ctx)`, `select-narrow($ctx,
//! $candidates)`, …— the paper's implementation Alternative 3) are *not*
//! dispatched here: the compiler resolves them into annotated
//! [`crate::plan::PlanExpr::StandoffFn`] join operators, so they share
//! the axis-step execution machinery and plan-time strategy choice.

use standoff_algebra::{Item, LlSeq};
use standoff_xml::{NodeRef, SerializeOptions};

use crate::error::QueryError;
use crate::eval::{int_value, Evaluator};

/// Invoke a built-in by local name. Returns `Ok(None)` when the name is
/// not a built-in (caller reports the unknown-function error).
pub fn call_builtin(
    ev: &mut Evaluator<'_>,
    name: &str,
    args: Vec<LlSeq>,
) -> Result<Option<LlSeq>, QueryError> {
    let n = ev.n_iters();
    let result = match (name, args.len()) {
        ("doc", 1) => fn_doc(ev, &args[0])?,
        ("layer", 2) => fn_layer(ev, &args[0], &args[1])?,
        ("root", 1) => fn_root(&args[0])?,
        ("count", 1) => args[0].count_per_iter(n),
        ("exists", 1) => per_iter_bool(n, &args[0], |g| !g.is_empty()),
        ("empty", 1) => per_iter_bool(n, &args[0], |g| g.is_empty()),
        ("not", 1) => {
            let ebv = args[0].effective_boolean(n);
            LlSeq::from_columns(
                (0..n).collect(),
                ebv.into_iter().map(|b| Item::Boolean(!b)).collect(),
            )
        }
        ("boolean", 1) => {
            let ebv = args[0].effective_boolean(n);
            LlSeq::from_columns(
                (0..n).collect(),
                ebv.into_iter().map(Item::Boolean).collect(),
            )
        }
        ("string", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            Some(Item::str(match g.first() {
                Some(item) => item.string_value(&ev.engine.store),
                None => String::new(),
            }))
        }),
        ("data", 1) => {
            let store = &ev.engine.store;
            args[0].map_items(|i| i.atomize(store))
        }
        ("number", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            Some(Item::Double(match g.first() {
                Some(item) => item.as_number(&ev.engine.store).unwrap_or(f64::NAN),
                None => f64::NAN,
            }))
        }),
        ("name", 1) | ("local-name", 1) => {
            let local_only = name == "local-name";
            per_iter_map(ev, n, &args[0], move |ev, g| {
                let text = match g.first() {
                    Some(Item::Node(node)) => {
                        let full = ev.engine.store.node_name(*node);
                        if local_only {
                            full.split(':').next_back().unwrap_or("").to_string()
                        } else {
                            full
                        }
                    }
                    _ => String::new(),
                };
                Some(Item::str(text))
            })
        }
        ("string-length", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            let len = g
                .first()
                .map(|i| i.string_value(&ev.engine.store).chars().count())
                .unwrap_or(0);
            Some(Item::Integer(len as i64))
        }),
        ("normalize-space", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            let s = g
                .first()
                .map(|i| i.string_value(&ev.engine.store))
                .unwrap_or_default();
            Some(Item::str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }),
        ("upper-case", 1) => string_unary(ev, n, &args[0], |s| s.to_uppercase()),
        ("lower-case", 1) => string_unary(ev, n, &args[0], |s| s.to_lowercase()),
        ("concat", _) if args.len() >= 2 => {
            let mut iters = Vec::with_capacity(n as usize);
            let mut items = Vec::with_capacity(n as usize);
            for iter in 0..n {
                let mut s = String::new();
                for a in &args {
                    if let Some(item) = a.group(iter).first() {
                        s.push_str(&item.string_value(&ev.engine.store));
                    }
                }
                iters.push(iter);
                items.push(Item::str(s));
            }
            LlSeq::from_columns(iters, items)
        }
        ("contains", 2) => string_binary(ev, n, &args[0], &args[1], |a, b| {
            Item::Boolean(a.contains(b))
        }),
        ("starts-with", 2) => string_binary(ev, n, &args[0], &args[1], |a, b| {
            Item::Boolean(a.starts_with(b))
        }),
        ("ends-with", 2) => string_binary(ev, n, &args[0], &args[1], |a, b| {
            Item::Boolean(a.ends_with(b))
        }),
        ("string-join", 2) => {
            let mut iters = Vec::new();
            let mut items = Vec::new();
            for iter in 0..n {
                let sep = args[1]
                    .group(iter)
                    .first()
                    .map(|i| i.string_value(&ev.engine.store))
                    .unwrap_or_default();
                let joined = args[0]
                    .group(iter)
                    .iter()
                    .map(|i| i.string_value(&ev.engine.store))
                    .collect::<Vec<_>>()
                    .join(&sep);
                iters.push(iter);
                items.push(Item::str(joined));
            }
            LlSeq::from_columns(iters, items)
        }
        ("substring", 2) | ("substring", 3) => fn_substring(ev, n, &args)?,
        ("substring-before", 2) => string_binary(ev, n, &args[0], &args[1], |a, b| {
            Item::str(a.find(b).map(|k| &a[..k]).unwrap_or(""))
        }),
        ("substring-after", 2) => string_binary(ev, n, &args[0], &args[1], |a, b| {
            Item::str(a.find(b).map(|k| &a[k + b.len()..]).unwrap_or(""))
        }),
        ("translate", 3) => {
            let mut iters = Vec::new();
            let mut items = Vec::new();
            for iter in 0..n {
                let s = args[0]
                    .group(iter)
                    .first()
                    .map(|i| i.string_value(&ev.engine.store))
                    .unwrap_or_default();
                let from: Vec<char> = args[1]
                    .group(iter)
                    .first()
                    .map(|i| i.string_value(&ev.engine.store))
                    .unwrap_or_default()
                    .chars()
                    .collect();
                let to: Vec<char> = args[2]
                    .group(iter)
                    .first()
                    .map(|i| i.string_value(&ev.engine.store))
                    .unwrap_or_default()
                    .chars()
                    .collect();
                let out: String = s
                    .chars()
                    .filter_map(|c| match from.iter().position(|&f| f == c) {
                        Some(k) => to.get(k).copied(),
                        None => Some(c),
                    })
                    .collect();
                iters.push(iter);
                items.push(Item::str(out));
            }
            LlSeq::from_columns(iters, items)
        }
        // Whitespace tokenizer (the regex-free XPath 1.0 idiom; a pattern
        // argument would need a regex engine, which is out of scope).
        ("tokenize", 1) => {
            let mut out = LlSeq::empty();
            for iter in 0..n {
                if let Some(item) = args[0].group(iter).first() {
                    for tok in item.string_value(&ev.engine.store).split_whitespace() {
                        out.push(iter, Item::str(tok));
                    }
                }
            }
            out
        }
        ("sum", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            let mut all_int = true;
            let mut total = 0f64;
            for item in g {
                match item.atomize(&ev.engine.store) {
                    Item::Integer(i) => total += i as f64,
                    other => {
                        all_int = false;
                        total += other.as_number(&ev.engine.store).unwrap_or(f64::NAN);
                    }
                }
            }
            Some(if all_int && total.fract() == 0.0 {
                Item::Integer(total as i64)
            } else {
                Item::Double(total)
            })
        }),
        ("avg", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            if g.is_empty() {
                return None;
            }
            let total: f64 = g
                .iter()
                .map(|i| i.as_number(&ev.engine.store).unwrap_or(f64::NAN))
                .sum();
            Some(Item::Double(total / g.len() as f64))
        }),
        ("max", 1) | ("min", 1) => {
            let want_max = name == "max";
            per_iter_map(ev, n, &args[0], move |ev, g| {
                let store = &ev.engine.store;
                g.iter().map(|i| i.atomize(store)).reduce(|best, x| {
                    let keep_x = matches!(
                        x.general_compare(&best, store),
                        Some(std::cmp::Ordering::Greater)
                    ) == want_max
                        && x.general_compare(&best, store).is_some()
                        && x.general_compare(&best, store) != Some(std::cmp::Ordering::Equal);
                    if keep_x {
                        x
                    } else {
                        best
                    }
                })
            })
        }
        ("abs", 1) => numeric_unary(ev, n, &args[0], |v| v.abs()),
        ("floor", 1) => numeric_unary(ev, n, &args[0], f64::floor),
        ("ceiling", 1) => numeric_unary(ev, n, &args[0], f64::ceil),
        ("round", 1) => numeric_unary(ev, n, &args[0], |v| {
            // XPath rounds half towards positive infinity.
            (v + 0.5).floor()
        }),
        ("distinct-values", 1) => {
            let store = &ev.engine.store;
            let mut out = LlSeq::empty();
            for (iter, items) in args[0].groups() {
                let mut seen: Vec<Item> = Vec::new();
                for item in items {
                    let v = item.atomize(store);
                    if !seen
                        .iter()
                        .any(|s| s.general_compare(&v, store) == Some(std::cmp::Ordering::Equal))
                    {
                        seen.push(v.clone());
                        out.push(iter, v);
                    }
                }
            }
            out
        }
        ("reverse", 1) => {
            let mut out = LlSeq::empty();
            for (iter, items) in args[0].groups() {
                for item in items.iter().rev() {
                    out.push(iter, item.clone());
                }
            }
            out
        }
        ("subsequence", 2) | ("subsequence", 3) => fn_subsequence(ev, n, &args)?,
        ("zero-or-one", 1) => {
            for (_, items) in args[0].groups() {
                if items.len() > 1 {
                    return Err(QueryError::dynamic("zero-or-one(): more than one item"));
                }
            }
            args.into_iter().next().unwrap()
        }
        ("exactly-one", 1) => {
            let table = args.into_iter().next().unwrap();
            for iter in 0..n {
                if table.group(iter).len() != 1 {
                    return Err(QueryError::dynamic("exactly-one(): not exactly one item"));
                }
            }
            table
        }
        ("one-or-more", 1) => {
            let table = args.into_iter().next().unwrap();
            for iter in 0..n {
                if table.group(iter).is_empty() {
                    return Err(QueryError::dynamic("one-or-more(): empty sequence"));
                }
            }
            table
        }
        ("serialize", 1) => per_iter_map(ev, n, &args[0], |ev, g| {
            let mut s = String::new();
            for item in g {
                match item {
                    Item::Node(node) => s.push_str(&standoff_xml::serialize_node(
                        ev.engine.store.doc(node.doc),
                        node.id,
                        SerializeOptions::default(),
                    )),
                    atom => s.push_str(&atom.string_value(&ev.engine.store)),
                }
            }
            Some(Item::str(s))
        }),
        _ => return Ok(None),
    };
    Ok(Some(result))
}

// ---- helpers ----

fn per_iter_bool(n: u32, table: &LlSeq, f: impl Fn(&[Item]) -> bool) -> LlSeq {
    let mut items = Vec::with_capacity(n as usize);
    for iter in 0..n {
        items.push(Item::Boolean(f(table.group(iter))));
    }
    LlSeq::from_columns((0..n).collect(), items)
}

/// Per-iteration mapping producing zero-or-one item per iteration.
fn per_iter_map(
    ev: &Evaluator<'_>,
    n: u32,
    table: &LlSeq,
    f: impl Fn(&Evaluator<'_>, &[Item]) -> Option<Item>,
) -> LlSeq {
    let mut iters = Vec::with_capacity(n as usize);
    let mut items = Vec::with_capacity(n as usize);
    for iter in 0..n {
        if let Some(item) = f(ev, table.group(iter)) {
            iters.push(iter);
            items.push(item);
        }
    }
    LlSeq::from_columns(iters, items)
}

fn string_unary(ev: &Evaluator<'_>, n: u32, table: &LlSeq, f: impl Fn(&str) -> String) -> LlSeq {
    per_iter_map(ev, n, table, |ev, g| {
        let s = g
            .first()
            .map(|i| i.string_value(&ev.engine.store))
            .unwrap_or_default();
        Some(Item::str(f(&s)))
    })
}

fn string_binary(
    ev: &Evaluator<'_>,
    n: u32,
    a: &LlSeq,
    b: &LlSeq,
    f: impl Fn(&str, &str) -> Item,
) -> LlSeq {
    let mut iters = Vec::with_capacity(n as usize);
    let mut items = Vec::with_capacity(n as usize);
    for iter in 0..n {
        let x = a
            .group(iter)
            .first()
            .map(|i| i.string_value(&ev.engine.store))
            .unwrap_or_default();
        let y = b
            .group(iter)
            .first()
            .map(|i| i.string_value(&ev.engine.store))
            .unwrap_or_default();
        iters.push(iter);
        items.push(f(&x, &y));
    }
    LlSeq::from_columns(iters, items)
}

fn numeric_unary(ev: &Evaluator<'_>, n: u32, table: &LlSeq, f: impl Fn(f64) -> f64) -> LlSeq {
    per_iter_map(ev, n, table, |ev, g| {
        let item = g.first()?;
        let v = item.as_number(&ev.engine.store)?;
        let r = f(v);
        Some(match item.atomize(&ev.engine.store) {
            Item::Integer(_) => Item::Integer(r as i64),
            _ if r.fract() == 0.0 && r.abs() < 1e15 => Item::Integer(r as i64),
            _ => Item::Double(r),
        })
    })
}

fn fn_doc(ev: &mut Evaluator<'_>, uris: &LlSeq) -> Result<LlSeq, QueryError> {
    let n = ev.n_iters();
    let mut out = LlSeq::empty();
    for iter in 0..n {
        let Some(item) = uris.group(iter).first() else {
            continue;
        };
        let uri = item.string_value(&ev.engine.store);
        let doc_id = ev
            .engine
            .store
            .by_uri(&uri)
            .ok_or_else(|| QueryError::dynamic(format!("document '{uri}' not found")))?;
        out.push(iter, Item::Node(NodeRef::tree(doc_id, 0)));
        // Overlay mount: the layer's pending inserts live in a sibling
        // delta document, but it is *not* a second root — tree steps
        // expand into it on the fly (see `Evaluator::eval_tree_step`),
        // so the caller sees exactly one document, as after compaction.
    }
    Ok(out)
}

/// `layer($uri, $name)` — root of a named annotation layer of a mounted
/// store (see `Engine::mount_store`). `layer("corpus", "base")` is the
/// base layer, i.e. the same node as `doc("corpus")`.
fn fn_layer(ev: &mut Evaluator<'_>, uris: &LlSeq, names: &LlSeq) -> Result<LlSeq, QueryError> {
    let n = ev.n_iters();
    let mut out = LlSeq::empty();
    for iter in 0..n {
        let (Some(uri_item), Some(name_item)) =
            (uris.group(iter).first(), names.group(iter).first())
        else {
            continue;
        };
        let uri = uri_item.string_value(&ev.engine.store);
        let name = name_item.string_value(&ev.engine.store);
        let doc_id = ev.engine.layer_doc(&uri, &name).ok_or_else(|| {
            QueryError::dynamic(format!("no layer '{name}' mounted under '{uri}'"))
        })?;
        out.push(iter, Item::Node(NodeRef::tree(doc_id, 0)));
        // Merge-on-read: a mutated layer's inserts ride in its sibling
        // delta document (see `Engine::mount_overlay`). Tree steps merge
        // it in on the fly; returning only the base root keeps `/site`
        // style child steps from binding the same logical root twice.
    }
    Ok(out)
}

fn fn_root(nodes: &LlSeq) -> Result<LlSeq, QueryError> {
    let mut out = LlSeq::empty();
    for (iter, items) in nodes.groups() {
        let mut last: Option<NodeRef> = None;
        for item in items {
            let node = item
                .as_node()
                .ok_or_else(|| QueryError::dynamic("root() requires nodes"))?;
            let root = NodeRef::tree(node.doc, 0);
            if last != Some(root) {
                out.push(iter, Item::Node(root));
                last = Some(root);
            }
        }
    }
    Ok(out)
}

fn fn_substring(ev: &Evaluator<'_>, n: u32, args: &[LlSeq]) -> Result<LlSeq, QueryError> {
    let mut iters = Vec::new();
    let mut items = Vec::new();
    for iter in 0..n {
        let s = args[0]
            .group(iter)
            .first()
            .map(|i| i.string_value(&ev.engine.store))
            .unwrap_or_default();
        let Some(start_item) = args[1].group(iter).first() else {
            continue;
        };
        let start = start_item
            .as_number(&ev.engine.store)
            .ok_or_else(|| QueryError::dynamic("substring(): start is not a number"))?;
        let len = match args.get(2) {
            Some(a) => match a.group(iter).first() {
                Some(item) => item
                    .as_number(&ev.engine.store)
                    .ok_or_else(|| QueryError::dynamic("substring(): length is not a number"))?,
                None => 0.0,
            },
            None => f64::INFINITY,
        };
        // XPath 1-based character positions.
        let chars: Vec<char> = s.chars().collect();
        let from = (start.round() as i64 - 1).max(0) as usize;
        let to = if len.is_infinite() {
            chars.len()
        } else {
            ((start.round() + len.round() - 1.0).max(0.0) as usize).min(chars.len())
        };
        let sub: String = if from < to {
            chars[from..to].iter().collect()
        } else {
            String::new()
        };
        iters.push(iter);
        items.push(Item::str(sub));
    }
    Ok(LlSeq::from_columns(iters, items))
}

fn fn_subsequence(ev: &Evaluator<'_>, n: u32, args: &[LlSeq]) -> Result<LlSeq, QueryError> {
    let mut out = LlSeq::empty();
    for iter in 0..n {
        let items = args[0].group(iter);
        let Some(start_item) = args[1].group(iter).first() else {
            continue;
        };
        let start = int_value(start_item, &ev.engine.store)?;
        let len = match args.get(2) {
            Some(a) => match a.group(iter).first() {
                Some(item) => int_value(item, &ev.engine.store)?,
                None => 0,
            },
            None => i64::MAX,
        };
        for (pos, item) in items.iter().enumerate() {
            let p = pos as i64 + 1;
            if p >= start && (len == i64::MAX || p < start + len) {
                out.push(iter, item.clone());
            }
        }
    }
    Ok(out)
}
