//! The loop-lifted plan executor.
//!
//! The evaluator runs **compiled plans** ([`crate::plan`]) — never the
//! surface AST. Every plan operator is evaluated **once per scope**,
//! producing an `iter|pos|item` table ([`LlSeq`]) that holds its value
//! for *all* iterations of the enclosing for-loops simultaneously —
//! Pathfinder's loop-lifting (paper §4.1) realized as a direct plan
//! interpreter. A `for` clause does not loop: it pushes a *frame* whose
//! iterations are the rows of the binding sequence; axis steps and
//! StandOff joins then run once, in bulk, over the whole frame. This is
//! precisely what makes the loop-lifted StandOff MergeJoin reachable
//! from queries like XMark Q2.
//!
//! Plan-time decisions are honored, not re-made: each StandOff join
//! operator carries its strategy and candidate-pushdown annotation
//! ([`crate::plan::StandoffOp`]), and FLWOR operators carry the
//! optimizer's hoisted loop-invariant bindings, which this module
//! evaluates once per surviving host iteration (after the `where`
//! restriction) instead of once per inner iteration.
//!
//! Frames form a stack; each non-root frame carries a map from its
//! iterations to its parent's, so outer variables expand on demand and
//! results map back when the frame pops.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use standoff_algebra::{Item, LlSeq, NameCache, NodeTable, NodeTest, TreeAxis};
use standoff_core::join::evaluate_standoff_join_with;
use standoff_core::{IterNode, JoinInput, RegionIndex, RegionSource, StandoffConfig};
use standoff_xml::{DocId, DocumentBuilder, NodeKind, NodeRef};

use crate::ast::{ArithOp, CompOp};
use crate::engine::{EngineState, JoinStats};
use crate::error::QueryError;
use crate::functions;
use crate::plan::*;
use crate::profile::{JoinExec, PlanProfile};

/// Pre rank of a document's root *element* (skipping any leading
/// comments or processing instructions at document level).
fn root_element_pre(doc: &standoff_xml::Document) -> u32 {
    let mut pre = 1u32;
    while (pre as usize) < doc.node_count() {
        if doc.kind(pre) == NodeKind::Element && doc.parent(pre) == 0 {
            return pre;
        }
        pre += doc.size(pre) + 1;
    }
    0
}

/// One scope of the loop-lifting frame stack.
pub struct Frame {
    /// Number of iterations of this scope.
    pub n_iters: u32,
    /// `map[i]` = parent-frame iteration of this frame's iteration `i`
    /// (monotone non-decreasing). `None` for the root frame.
    pub map: Option<Vec<u32>>,
    /// Variables bound in this frame, in this frame's numbering.
    pub vars: HashMap<String, LlSeq>,
    /// Function-call barrier: variable lookup skips outer frames (except
    /// the root frame's globals) but iteration maps still compose.
    pub barrier: bool,
}

pub struct Evaluator<'e> {
    pub engine: &'e mut EngineState,
    pub config: StandoffConfig,
    /// The plan's user-defined function table; [`PlanExpr::UdfCall`]
    /// indexes into it.
    pub functions: Vec<Arc<PlanFunction>>,
    pub frames: Vec<Frame>,
    pub call_depth: usize,
    /// Per-execution memo of name-test resolutions for tree steps. The
    /// cache keys on test addresses, which is sound here because every
    /// cached test lives in the executing plan: the body outlives the
    /// evaluator's borrow, and function bodies are pinned by the `Arc`s
    /// in `functions`.
    name_cache: NameCache,
    /// Per-operator measurements, present only while profiling (see
    /// [`crate::engine::EngineOptions::profile`]). Keyed by operator
    /// address, which is sound for the same reason as `name_cache`.
    /// When `None` — the default — [`Evaluator::eval`] is a single
    /// branch away from the unprofiled dispatch (the
    /// `TraceSink::enabled` zero-cost pattern).
    profile: Option<Box<PlanProfile>>,
}

impl<'e> Evaluator<'e> {
    pub fn new(engine: &'e mut EngineState, config: StandoffConfig) -> Self {
        Evaluator {
            engine,
            config,
            functions: Vec::new(),
            frames: vec![Frame {
                n_iters: 1,
                map: None,
                vars: HashMap::new(),
                barrier: false,
            }],
            call_depth: 0,
            name_cache: NameCache::new(),
            profile: None,
        }
    }

    /// Switch per-operator profiling on for this execution. Idempotent;
    /// measurements accumulate into a fresh [`PlanProfile`].
    pub(crate) fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// Detach the recorded profile, if profiling was enabled.
    pub(crate) fn take_profile(&mut self) -> Option<PlanProfile> {
        self.profile.take().map(|p| *p)
    }

    #[inline]
    pub fn n_iters(&self) -> u32 {
        self.frames.last().unwrap().n_iters
    }

    fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().unwrap()
    }

    /// Bind a variable in the current frame.
    pub fn bind(&mut self, name: &str, value: LlSeq) {
        self.top_mut().vars.insert(name.to_string(), value);
    }

    /// Look up a variable, expanding it from its defining frame into the
    /// current frame's iteration numbering.
    pub fn lookup(&self, name: &str) -> Result<LlSeq, QueryError> {
        let top = self.frames.len() - 1;
        let mut depth = top as isize;
        let mut blocked = false;
        while depth >= 0 {
            let frame = &self.frames[depth as usize];
            // Below a barrier only the root frame's globals are visible.
            if (!blocked || depth == 0) && frame.vars.contains_key(name) {
                let table = frame.vars.get(name).unwrap();
                return Ok(self.expand_to_top(table, depth as usize));
            }
            if frame.barrier {
                blocked = true;
            }
            depth -= 1;
        }
        Err(QueryError::stat(format!("undeclared variable ${name}")))
    }

    /// Expand a table expressed in `frame_depth`'s numbering into the top
    /// frame's numbering by composing the iteration maps.
    fn expand_to_top(&self, table: &LlSeq, frame_depth: usize) -> LlSeq {
        let top = self.frames.len() - 1;
        if frame_depth == top {
            return table.clone();
        }
        // Compose map: top iteration -> frame_depth iteration.
        let mut composed: Vec<u32> = match &self.frames[top].map {
            Some(m) => m.clone(),
            None => (0..self.frames[top].n_iters).collect(),
        };
        for depth in (frame_depth + 1..top).rev() {
            let m = self.frames[depth]
                .map
                .as_ref()
                .expect("non-root frames have maps");
            for c in composed.iter_mut() {
                *c = m[*c as usize];
            }
        }
        table.expand(&composed)
    }

    // ================= operator dispatch =================

    pub fn eval(&mut self, expr: &PlanExpr) -> Result<LlSeq, QueryError> {
        if self.profile.is_none() && self.engine.budget.is_none() {
            // Ungoverned, unprofiled: the zero-overhead path every
            // benchmark and plain run takes.
            return self.eval_inner(expr);
        }
        if self.profile.is_none() {
            return self.eval_governed(expr);
        }
        let start = std::time::Instant::now();
        let result = if self.engine.budget.is_none() {
            self.eval_inner(expr)
        } else {
            self.eval_governed(expr)
        };
        let ns = start.elapsed().as_nanos() as u64;
        if let Some(p) = self.profile.as_deref_mut() {
            let m = p.op_mut(expr as *const PlanExpr as usize);
            m.calls += 1;
            // Inclusive of children: the renderer shows the hierarchy.
            m.wall_ns += ns;
            if let Ok(t) = &result {
                m.out_rows += t.len() as u64;
            }
        }
        result
    }

    /// [`Evaluator::eval_inner`] under a governance budget: check the
    /// deadline/cancellation flag before descending into the operator,
    /// and charge its output cardinality afterwards. Operator outputs
    /// are plan-shaped — identical across join strategies and thread
    /// counts — so a result-cardinality cap trips deterministically no
    /// matter how the join was evaluated.
    fn eval_governed(&mut self, expr: &PlanExpr) -> Result<LlSeq, QueryError> {
        let budget = self
            .engine
            .budget
            .clone()
            .expect("eval_governed requires an installed budget");
        budget.check()?;
        let result = self.eval_inner(expr)?;
        budget.charge_results(result.len() as u64)?;
        Ok(result)
    }

    fn eval_inner(&mut self, expr: &PlanExpr) -> Result<LlSeq, QueryError> {
        match expr {
            PlanExpr::Const(atom) => Ok(LlSeq::lifted_const(self.n_iters(), atom.to_item())),
            PlanExpr::Var(name) => self.lookup(name),
            PlanExpr::ContextItem => self.lookup("."),
            PlanExpr::Sequence(items) => {
                let mut out = LlSeq::empty();
                for e in items {
                    let t = self.eval(e)?;
                    out = out.concat(&t);
                }
                Ok(out)
            }
            PlanExpr::Flwor {
                hoisted,
                clauses,
                where_clause,
                order_by,
                return_clause,
            } => self.eval_flwor(
                hoisted,
                clauses,
                where_clause.as_deref(),
                order_by,
                return_clause,
            ),
            PlanExpr::Quantified {
                every,
                bindings,
                satisfies,
            } => self.eval_quantified(*every, bindings, satisfies),
            PlanExpr::IfThenElse {
                cond,
                then_branch,
                else_branch,
            } => self.eval_if(cond, then_branch, else_branch),
            PlanExpr::Or(a, b) => self.eval_logical(a, b, |x, y| x || y),
            PlanExpr::And(a, b) => self.eval_logical(a, b, |x, y| x && y),
            PlanExpr::Comparison(op, a, b) => self.eval_comparison(*op, a, b),
            PlanExpr::Arith(op, a, b) => self.eval_arith(*op, a, b),
            PlanExpr::Range(a, b) => self.eval_range(a, b),
            PlanExpr::Neg(e) => self.eval_neg(e),
            PlanExpr::Union(a, b) => self.eval_union(a, b),
            PlanExpr::Intersect(a, b) => self.eval_intersect_except(a, b, true),
            PlanExpr::Except(a, b) => self.eval_intersect_except(a, b, false),
            PlanExpr::TreeStep {
                input,
                axis,
                test,
                predicates,
            } => self.eval_tree_step(input.as_deref(), *axis, test, predicates),
            PlanExpr::StandoffStep {
                input,
                op,
                test,
                predicates,
            } => self.eval_standoff_step(
                input.as_deref(),
                op,
                test,
                predicates,
                expr as *const PlanExpr as usize,
            ),
            PlanExpr::PathExpr { input, step } => self.eval_path_expr(input, step),
            PlanExpr::RootPath => self.eval_root_path(),
            PlanExpr::Filter { input, predicate } => {
                let t = self.eval(input)?;
                self.apply_predicate(t, predicate)
            }
            PlanExpr::UdfCall { index, name, args } => self.eval_udf_call(*index, name, args),
            PlanExpr::StandoffFn {
                op,
                ctx,
                candidates,
            } => {
                let ctx_t = self.eval(ctx)?;
                let ctx_nodes = NodeTable::from_llseq(&ctx_t).map_err(QueryError::dynamic)?;
                let cands = match candidates {
                    Some(c) => {
                        let t = self.eval(c)?;
                        Some(NodeTable::from_llseq(&t).map_err(QueryError::dynamic)?)
                    }
                    None => None,
                };
                let out = self.eval_standoff_join(
                    &ctx_nodes,
                    op,
                    &NodeTest::any_element(),
                    cands.as_ref(),
                    expr as *const PlanExpr as usize,
                )?;
                Ok(out.into_llseq())
            }
            PlanExpr::BuiltinCall { name, args } => self.eval_builtin_call(name, args),
            PlanExpr::Constructor(c) => self.eval_constructor(c),
        }
    }

    // ================= FLWOR =================

    fn eval_flwor(
        &mut self,
        hoisted: &[(String, PlanExpr)],
        clauses: &[PlanClause],
        where_clause: Option<&PlanExpr>,
        order_by: &[PlanOrderKey],
        return_clause: &PlanExpr,
    ) -> Result<LlSeq, QueryError> {
        let base_depth = self.frames.len();
        // A FLWOR gets its own scope frame (identity map) so that `let`
        // bindings never escape into the host frame — in the root scope
        // they would otherwise masquerade as globals and leak through
        // function-call barriers. Hoisted loop-invariant bindings also
        // live here, in host numbering.
        let host_n = self.n_iters();
        self.frames.push(Frame {
            n_iters: host_n,
            map: Some((0..host_n).collect()),
            vars: HashMap::new(),
            barrier: false,
        });
        let result = (|| {
            for clause in clauses {
                match clause {
                    PlanClause::For { var, at, seq } => {
                        let s = self.eval(seq)?;
                        // New scope: one iteration per row of the binding
                        // sequence.
                        let n = s.len() as u32;
                        let map = s.iters().to_vec();
                        // Positional variable: position within the old
                        // iteration's group.
                        let at_table = at.as_ref().map(|_| {
                            let mut items = Vec::with_capacity(s.len());
                            let mut pos = 0i64;
                            for k in 0..s.len() {
                                if k > 0 && s.iters()[k] != s.iters()[k - 1] {
                                    pos = 0;
                                }
                                pos += 1;
                                items.push(Item::Integer(pos));
                            }
                            LlSeq::from_columns((0..n).collect(), items)
                        });
                        let var_table = LlSeq::from_columns((0..n).collect(), s.items().to_vec());
                        let mut vars = HashMap::new();
                        vars.insert(var.clone(), var_table);
                        if let (Some(at_name), Some(at_table)) = (at, at_table) {
                            vars.insert(at_name.clone(), at_table);
                        }
                        self.frames.push(Frame {
                            n_iters: n,
                            map: Some(map),
                            vars,
                            barrier: false,
                        });
                    }
                    PlanClause::Let { var, value } => {
                        let v = self.eval(value)?;
                        self.bind(var, v);
                    }
                }
            }
            if let Some(w) = where_clause {
                let cond = self.eval(w)?;
                let keep = cond.effective_boolean(self.n_iters());
                // Restriction frame over the kept iterations.
                let mapping: Vec<u32> = keep
                    .iter()
                    .enumerate()
                    .filter(|(_, &k)| k)
                    .map(|(i, _)| i as u32)
                    .collect();
                self.frames.push(Frame {
                    n_iters: mapping.len() as u32,
                    map: Some(mapping),
                    vars: HashMap::new(),
                    barrier: false,
                });
            }

            // Loop-invariant bindings the optimizer hoisted out of this
            // FLWOR: evaluated in the *scope frame* (host numbering),
            // restricted to the host iterations that survive into the
            // current inner scope — once per surviving host iteration
            // instead of once per inner iteration, and not at all when
            // the iteration space is empty (preserving the lazy error
            // behavior of empty loops).
            if !hoisted.is_empty() {
                let n_top = self.n_iters();
                let mut comp: Vec<u32> = (0..n_top).collect();
                for depth in (base_depth + 1..self.frames.len()).rev() {
                    let m = self.frames[depth].map.as_ref().unwrap();
                    for c in comp.iter_mut() {
                        *c = m[*c as usize];
                    }
                }
                let mut surviving = comp;
                surviving.sort_unstable();
                surviving.dedup();
                let saved = self.frames.split_off(base_depth + 1);
                let mut outcome = Ok(());
                for (name, expr) in hoisted {
                    match self.eval_in_restriction(surviving.clone(), expr) {
                        Ok(value) => self.bind(name, value),
                        Err(e) => {
                            outcome = Err(e);
                            break;
                        }
                    }
                }
                self.frames.extend(saved);
                outcome?;
            }

            // Ranks for order-by (identity without one).
            let n = self.n_iters();
            let rank: Vec<u32> = if order_by.is_empty() {
                (0..n).collect()
            } else {
                self.order_by_ranks(order_by)?
            };

            let body = self.eval(return_clause)?;

            // Map the body back through all frames pushed by this FLWOR,
            // reordering iterations by rank within each host iteration.
            let mut comp: Vec<u32> = (0..n).collect();
            for depth in (base_depth..self.frames.len()).rev() {
                let m = self.frames[depth].map.as_ref().unwrap();
                for c in comp.iter_mut() {
                    *c = m[*c as usize];
                }
            }
            // Order inner iterations by (host iter, rank).
            let mut order: Vec<u32> = (0..n).collect();
            order.sort_by_key(|&k| (comp[k as usize], rank[k as usize], k));
            let mut out = LlSeq::empty();
            for &k in &order {
                for item in body.group(k) {
                    out.push(comp[k as usize], item.clone());
                }
            }
            Ok(out)
        })();
        self.frames.truncate(base_depth);
        result
    }

    /// Rank of each current-frame iteration under the order-by keys,
    /// within its host iteration group.
    fn order_by_ranks(&mut self, order_by: &[PlanOrderKey]) -> Result<Vec<u32>, QueryError> {
        let n = self.n_iters();
        // Evaluate each key: per iteration an optional atomic item.
        let mut keys: Vec<Vec<Option<Item>>> = Vec::with_capacity(order_by.len());
        for key in order_by {
            let t = self.eval(&key.expr)?;
            let mut col: Vec<Option<Item>> = vec![None; n as usize];
            for (iter, items) in t.groups() {
                if let Some(first) = items.first() {
                    col[iter as usize] = Some(first.atomize(&self.engine.store));
                }
            }
            keys.push(col);
        }
        let store = &self.engine.store;
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by(|&a, &b| {
            for (key, spec) in keys.iter().zip(order_by) {
                let (ka, kb) = (&key[a as usize], &key[b as usize]);
                let ord = match (ka, kb) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less, // empty least
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => x
                        .general_compare(y, store)
                        .unwrap_or(std::cmp::Ordering::Equal),
                };
                let ord = if spec.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable
        });
        let mut rank = vec![0u32; n as usize];
        for (r, &k) in order.iter().enumerate() {
            rank[k as usize] = r as u32;
        }
        Ok(rank)
    }

    fn eval_quantified(
        &mut self,
        every: bool,
        bindings: &[(String, PlanExpr)],
        satisfies: &PlanExpr,
    ) -> Result<LlSeq, QueryError> {
        let base_depth = self.frames.len();
        let host_n = self.n_iters();
        let result = (|| {
            for (var, seq) in bindings {
                let s = self.eval(seq)?;
                let n = s.len() as u32;
                let map = s.iters().to_vec();
                let var_table = LlSeq::from_columns((0..n).collect(), s.items().to_vec());
                let mut vars = HashMap::new();
                vars.insert(var.clone(), var_table);
                self.frames.push(Frame {
                    n_iters: n,
                    map: Some(map),
                    vars,
                    barrier: false,
                });
            }
            let cond = self.eval(satisfies)?;
            let inner_n = self.n_iters();
            let truth = cond.effective_boolean(inner_n);
            // Compose back to the host frame.
            let mut comp: Vec<u32> = (0..inner_n).collect();
            for depth in (base_depth..self.frames.len()).rev() {
                let m = self.frames[depth].map.as_ref().unwrap();
                for c in comp.iter_mut() {
                    *c = m[*c as usize];
                }
            }
            let mut agg = vec![every; host_n as usize];
            for k in 0..inner_n as usize {
                let host = comp[k] as usize;
                if every {
                    agg[host] = agg[host] && truth[k];
                } else {
                    agg[host] = agg[host] || truth[k];
                }
            }
            Ok(LlSeq::from_columns(
                (0..host_n).collect(),
                agg.into_iter().map(Item::Boolean).collect(),
            ))
        })();
        self.frames.truncate(base_depth);
        result
    }

    fn eval_if(
        &mut self,
        cond: &PlanExpr,
        then_branch: &PlanExpr,
        else_branch: &PlanExpr,
    ) -> Result<LlSeq, QueryError> {
        let c = self.eval(cond)?;
        let keep = c.effective_boolean(self.n_iters());
        let then_iters: Vec<u32> = keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i as u32)
            .collect();
        let else_iters: Vec<u32> = keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| !k)
            .map(|(i, _)| i as u32)
            .collect();
        let then_part = self.eval_in_restriction(then_iters, then_branch)?;
        let else_part = self.eval_in_restriction(else_iters, else_branch)?;
        Ok(then_part.concat(&else_part))
    }

    /// Evaluate `expr` in a restriction frame over `iters` (host
    /// numbering); result comes back in host numbering. Skipping the
    /// evaluation entirely when the restriction is empty is what makes
    /// recursive user-defined functions terminate.
    fn eval_in_restriction(
        &mut self,
        iters: Vec<u32>,
        expr: &PlanExpr,
    ) -> Result<LlSeq, QueryError> {
        if iters.is_empty() {
            return Ok(LlSeq::empty());
        }
        self.frames.push(Frame {
            n_iters: iters.len() as u32,
            map: Some(iters),
            vars: HashMap::new(),
            barrier: false,
        });
        let result = self.eval(expr);
        let frame = self.frames.pop().unwrap();
        let map = frame.map.unwrap();
        result.map(|t| t.unrestrict(&map))
    }

    fn eval_logical(
        &mut self,
        a: &PlanExpr,
        b: &PlanExpr,
        op: impl Fn(bool, bool) -> bool,
    ) -> Result<LlSeq, QueryError> {
        let n = self.n_iters();
        let ta = self.eval(a)?.effective_boolean(n);
        let tb = self.eval(b)?.effective_boolean(n);
        Ok(LlSeq::from_columns(
            (0..n).collect(),
            ta.iter()
                .zip(&tb)
                .map(|(&x, &y)| Item::Boolean(op(x, y)))
                .collect(),
        ))
    }

    fn eval_comparison(
        &mut self,
        op: CompOp,
        a: &PlanExpr,
        b: &PlanExpr,
    ) -> Result<LlSeq, QueryError> {
        use std::cmp::Ordering;
        let n = self.n_iters();
        let ta = self.eval(a)?;
        let tb = self.eval(b)?;
        let check = |ord: Option<Ordering>, op: CompOp| -> bool {
            match (ord, op) {
                (Some(o), CompOp::Eq | CompOp::ValEq) => o == Ordering::Equal,
                (Some(o), CompOp::Ne | CompOp::ValNe) => o != Ordering::Equal,
                (Some(o), CompOp::Lt | CompOp::ValLt) => o == Ordering::Less,
                (Some(o), CompOp::Le | CompOp::ValLe) => o != Ordering::Greater,
                (Some(o), CompOp::Gt | CompOp::ValGt) => o == Ordering::Greater,
                (Some(o), CompOp::Ge | CompOp::ValGe) => o != Ordering::Less,
                (None, _) => false,
                (Some(_), CompOp::Is) => unreachable!("'is' handled before check()"),
            }
        };
        let is_value_comp = matches!(
            op,
            CompOp::ValEq
                | CompOp::ValNe
                | CompOp::ValLt
                | CompOp::ValLe
                | CompOp::ValGt
                | CompOp::ValGe
                | CompOp::Is
        );
        let mut iters = Vec::new();
        let mut items = Vec::new();
        for iter in 0..n {
            let ga = ta.group(iter);
            let gb = tb.group(iter);
            if is_value_comp {
                // Value comparison: empty operand → empty result.
                if ga.is_empty() || gb.is_empty() {
                    continue;
                }
                let result = if op == CompOp::Is {
                    match (ga[0].as_node(), gb[0].as_node()) {
                        (Some(x), Some(y)) => x == y,
                        _ => {
                            return Err(QueryError::dynamic(
                                "'is' requires node operands".to_string(),
                            ))
                        }
                    }
                } else {
                    check(ga[0].general_compare(&gb[0], &self.engine.store), op)
                };
                iters.push(iter);
                items.push(Item::Boolean(result));
            } else {
                // General comparison: existential over the pair set.
                let mut result = false;
                'outer: for x in ga {
                    for y in gb {
                        if check(x.general_compare(y, &self.engine.store), op) {
                            result = true;
                            break 'outer;
                        }
                    }
                }
                iters.push(iter);
                items.push(Item::Boolean(result));
            }
        }
        Ok(LlSeq::from_columns(iters, items))
    }

    fn eval_arith(&mut self, op: ArithOp, a: &PlanExpr, b: &PlanExpr) -> Result<LlSeq, QueryError> {
        let n = self.n_iters();
        let ta = self.eval(a)?;
        let tb = self.eval(b)?;
        let mut iters = Vec::new();
        let mut items = Vec::new();
        for iter in 0..n {
            let ga = ta.group(iter);
            let gb = tb.group(iter);
            if ga.is_empty() || gb.is_empty() {
                continue; // arithmetic on () is ()
            }
            let x = ga[0].atomize(&self.engine.store);
            let y = gb[0].atomize(&self.engine.store);
            items.push(arith_items(op, &x, &y, &self.engine.store)?);
            iters.push(iter);
        }
        Ok(LlSeq::from_columns(iters, items))
    }

    fn eval_range(&mut self, a: &PlanExpr, b: &PlanExpr) -> Result<LlSeq, QueryError> {
        let n = self.n_iters();
        let ta = self.eval(a)?;
        let tb = self.eval(b)?;
        let mut out = LlSeq::empty();
        for iter in 0..n {
            let (ga, gb) = (ta.group(iter), tb.group(iter));
            if ga.is_empty() || gb.is_empty() {
                continue;
            }
            let lo = int_value(&ga[0], &self.engine.store)?;
            let hi = int_value(&gb[0], &self.engine.store)?;
            for v in lo..=hi {
                out.push(iter, Item::Integer(v));
            }
        }
        Ok(out)
    }

    fn eval_neg(&mut self, e: &PlanExpr) -> Result<LlSeq, QueryError> {
        let t = self.eval(e)?;
        let n = self.n_iters();
        let mut iters = Vec::new();
        let mut items = Vec::new();
        for iter in 0..n {
            let g = t.group(iter);
            if g.is_empty() {
                continue;
            }
            let item = match g[0].atomize(&self.engine.store) {
                Item::Integer(i) => Item::Integer(-i),
                other => Item::Double(
                    -other
                        .as_number(&self.engine.store)
                        .ok_or_else(|| QueryError::dynamic("cannot negate non-number"))?,
                ),
            };
            iters.push(iter);
            items.push(item);
        }
        Ok(LlSeq::from_columns(iters, items))
    }

    fn eval_union(&mut self, a: &PlanExpr, b: &PlanExpr) -> Result<LlSeq, QueryError> {
        let ta = self.eval(a)?;
        let tb = self.eval(b)?;
        let na = NodeTable::from_llseq(&ta).map_err(QueryError::dynamic)?;
        let nb = NodeTable::from_llseq(&tb).map_err(QueryError::dynamic)?;
        // Merge rows per iteration then normalize.
        let merged = na.into_llseq().concat(&nb.into_llseq());
        let mut table = NodeTable::from_llseq(&merged).expect("nodes in, nodes out");
        table.normalize(&self.engine.store);
        Ok(table.into_llseq())
    }

    /// `intersect` / `except`: node-identity set operations, per
    /// iteration, result in document order.
    fn eval_intersect_except(
        &mut self,
        a: &PlanExpr,
        b: &PlanExpr,
        keep_common: bool,
    ) -> Result<LlSeq, QueryError> {
        let ta = self.eval(a)?;
        let tb = self.eval(b)?;
        let mut na = NodeTable::from_llseq(&ta).map_err(QueryError::dynamic)?;
        let mut nb = NodeTable::from_llseq(&tb).map_err(QueryError::dynamic)?;
        na.normalize(&self.engine.store);
        nb.normalize(&self.engine.store);
        let mut out = NodeTable::with_capacity(na.len());
        for (&iter, node) in na.iters().iter().zip(na.nodes()) {
            let in_b = nb.group(iter).contains(node);
            if in_b == keep_common {
                out.push(iter, *node);
            }
        }
        Ok(out.into_llseq())
    }

    // ================= paths and steps =================

    fn context_nodes(&mut self, input: Option<&PlanExpr>) -> Result<NodeTable, QueryError> {
        let t = match input {
            Some(e) => self.eval(e)?,
            None => self
                .lookup(".")
                .map_err(|_| QueryError::dynamic("relative path used without a context item"))?,
        };
        NodeTable::from_llseq(&t).map_err(QueryError::dynamic)
    }

    fn eval_tree_step(
        &mut self,
        input: Option<&PlanExpr>,
        axis: TreeAxis,
        test: &NodeTest,
        predicates: &[PlanExpr],
    ) -> Result<LlSeq, QueryError> {
        let ctx = self.context_nodes(input)?;
        let (ctx, expanded) = self.expand_delta_contexts(ctx, axis);
        // `test` is plan memory (see `name_cache`), so resolution is
        // memoized per document across re-executions of this step.
        let result = standoff_algebra::staircase::ll_step_cached(
            &self.engine.store,
            &ctx,
            axis,
            test,
            &mut self.name_cache,
        );
        let result = self.filter_retracted(result);
        let result = self.fold_delta_scaffolding(result, axis, expanded);
        let mut table = result.into_llseq();
        for predicate in predicates {
            table = self.apply_predicate(table, predicate)?;
        }
        Ok(table)
    }

    /// Merge-on-read, navigation half: a mounted overlay keeps a layer's
    /// pending inserts in a sibling *delta document* whose root mirrors
    /// the layer root (see [`crate::Engine::mount_overlay`]). For the
    /// downward axes, every context row sitting at a position the delta
    /// document mirrors — the document node and the root element — gains
    /// a companion row at the mirrored position, so one `ll_step` scan
    /// walks base and delta as a single logical tree. Documents without
    /// a delta (and upward/sibling axes, where the companion could only
    /// produce scaffolding) pass through untouched; the whole expansion
    /// is one branch on pure mounts.
    fn expand_delta_contexts(&self, ctx: NodeTable, axis: TreeAxis) -> (NodeTable, bool) {
        use TreeAxis as A;
        if !self.engine.has_delta_docs()
            || !matches!(
                axis,
                A::Child | A::Descendant | A::DescendantOrSelf | A::Attribute
            )
        {
            return (ctx, false);
        }
        let mut out = NodeTable::with_capacity(ctx.len());
        let mut expanded = false;
        for (&iter, &node) in ctx.iters().iter().zip(ctx.nodes()) {
            out.push(iter, node);
            let (Some(pre), Some(delta)) = (node.id.pre(), self.engine.delta_doc_of(node.doc))
            else {
                continue;
            };
            let doc = self.engine.store.doc(node.doc);
            // Document node mirrors pre 0; the root element mirrors the
            // delta root (always pre 1 — delta documents are built with
            // no leading comments or PIs).
            let mirrored = if pre == 0 {
                Some(0)
            } else if doc.parent(pre) == 0 && doc.kind(pre) == NodeKind::Element {
                Some(1)
            } else {
                None
            };
            if let Some(dpre) = mirrored {
                out.push(iter, NodeRef::tree(delta, dpre));
                expanded = true;
            }
        }
        (out, expanded)
    }

    /// Merge-on-read, navigation half (result side): the delta document's
    /// document node and root element are scaffolding — the *logical*
    /// document has exactly one root, the base layer's. Upward axes remap
    /// them to their base originals (the parent of a pending insert is
    /// the layer root, exactly as after compaction); every other axis
    /// drops them. When anything changed, one `normalize` pass restores
    /// per-iteration document order and collapses remap duplicates —
    /// delta documents mount id-adjacent after their base, so the merged
    /// order equals the compacted snapshot's. No-op on pure mounts.
    fn fold_delta_scaffolding(
        &self,
        table: NodeTable,
        axis: TreeAxis,
        expanded: bool,
    ) -> NodeTable {
        use TreeAxis as A;
        if !self.engine.has_delta_docs() {
            return table;
        }
        let upward = matches!(axis, A::Parent | A::Ancestor | A::AncestorOrSelf);
        let mut out = NodeTable::with_capacity(table.len());
        let mut changed = expanded;
        for (&iter, &node) in table.iters().iter().zip(table.nodes()) {
            let scaffold = node
                .id
                .pre()
                .is_some_and(|pre| pre <= 1 && self.engine.is_delta_doc(node.doc));
            if !scaffold {
                out.push(iter, node);
                continue;
            }
            changed = true;
            if upward {
                let base = self
                    .engine
                    .base_doc_of(node.doc)
                    .expect("delta documents always overlay a base layer");
                let pre = node.id.pre().unwrap();
                let mapped = if pre == 0 {
                    0
                } else {
                    root_element_pre(self.engine.store.doc(base))
                };
                out.push(iter, NodeRef::tree(base, mapped));
            }
        }
        if changed {
            out.normalize(&self.engine.store);
        }
        out
    }

    /// Drop rows the mounted overlay has retracted: any node inside a
    /// retracted annotation subtree, and any attribute whose owner is.
    /// Every tree-navigation axis funnels through [`eval_tree_step`], so
    /// this one filter makes `//name`, `count(..)` and predicate steps
    /// agree with the merge-on-read joins. Free on pure mounts — a
    /// single branch when no retraction exists anywhere.
    fn filter_retracted(&self, table: NodeTable) -> NodeTable {
        if !self.engine.has_retractions() {
            return table;
        }
        let mut out = NodeTable::with_capacity(table.len());
        for (&iter, &node) in table.iters().iter().zip(table.nodes()) {
            let hidden = {
                let hidden_pres = self.engine.retractions_of(node.doc);
                if hidden_pres.is_empty() {
                    false
                } else {
                    let pre = node.id.pre().unwrap_or_else(|| {
                        let a = node.id.attr_index().expect("tree node or attribute");
                        self.engine.store.doc(node.doc).attr_owner(a)
                    });
                    hidden_pres.binary_search(&pre).is_ok()
                }
            };
            if !hidden {
                out.push(iter, node);
            }
        }
        out
    }

    fn eval_standoff_step(
        &mut self,
        input: Option<&PlanExpr>,
        op: &StandoffOp,
        test: &NodeTest,
        predicates: &[PlanExpr],
        prof_key: usize,
    ) -> Result<LlSeq, QueryError> {
        let ctx = self.context_nodes(input)?;
        let result = self.eval_standoff_join(&ctx, op, test, None, prof_key)?;
        let mut table = result.into_llseq();
        for predicate in predicates {
            table = self.apply_predicate(table, predicate)?;
        }
        Ok(table)
    }

    /// The StandOff configuration in effect for a document: a mounted
    /// layer keeps the configuration its snapshot index was built under;
    /// anything else uses the query prolog's `standoff-*` options.
    fn doc_config(&self, doc: DocId) -> StandoffConfig {
        self.engine
            .layer_config(doc)
            .cloned()
            .unwrap_or_else(|| self.config.clone())
    }

    /// Evaluate one StandOff join operator: partition the context per
    /// document fragment, run the *plan-annotated* join strategy per
    /// fragment (§4.4), and merge back into document order per
    /// iteration. Strategy and candidate pushdown come from the
    /// [`StandoffOp`] — they were decided at plan time, not here. An
    /// explicit candidate node sequence (the built-in function form,
    /// Figure 3) overrides the name-test pushdown.
    fn eval_standoff_join(
        &mut self,
        ctx: &NodeTable,
        op: &StandoffOp,
        test: &NodeTest,
        explicit_candidates: Option<&NodeTable>,
        prof_key: usize,
    ) -> Result<NodeTable, QueryError> {
        let axis = op.axis;
        let strategy = op.strategy;
        // Bucket context rows per document.
        let mut buckets: HashMap<DocId, Vec<IterNode>> = HashMap::new();
        for (&iter, node) in ctx.iters().iter().zip(ctx.nodes()) {
            // Only element nodes can be area-annotations; other context
            // nodes still pin their fragment for the reject domain.
            let pre = match node.id.pre() {
                Some(p) => p,
                None => self
                    .engine
                    .store
                    .doc(node.doc)
                    .attr_owner(node.id.attr_index().expect("attr id")),
            };
            buckets
                .entry(node.doc)
                .or_default()
                .push(IterNode { iter, node: pre });
        }
        // Explicit candidates bucketed per document too.
        let mut cand_buckets: HashMap<DocId, Vec<u32>> = HashMap::new();
        if let Some(cands) = explicit_candidates {
            for node in cands.nodes() {
                if let Some(pre) = node.id.pre() {
                    cand_buckets.entry(node.doc).or_default().push(pre);
                }
            }
            for list in cand_buckets.values_mut() {
                list.sort_unstable();
                list.dedup();
            }
        }

        // Group context documents into join units. A mounted layer set
        // joins across all layers of its group (the multi-layer corpus
        // model of `standoff-store` — regions share the BLOB coordinate
        // space); a plain document joins within itself (§3.3 fragment
        // semantics).
        let mut docs: Vec<DocId> = buckets.keys().copied().collect();
        docs.sort();
        let mut units: Vec<(Vec<DocId>, Vec<DocId>)> = Vec::new(); // (ctx docs, targets)
        {
            let mut grouped: HashMap<u32, Vec<DocId>> = HashMap::new();
            for &doc_id in &docs {
                match self.engine.layer_group_id(doc_id) {
                    Some(g) => grouped.entry(g).or_default().push(doc_id),
                    None => units.push((vec![doc_id], vec![doc_id])),
                }
            }
            let mut group_ids: Vec<u32> = grouped.keys().copied().collect();
            group_ids.sort_unstable();
            for g in group_ids {
                let ctx_docs = grouped.remove(&g).unwrap();
                units.push((ctx_docs, self.engine.layer_group_members(g).to_vec()));
            }
            units.sort_by_key(|(ctx_docs, _)| ctx_docs[0]);
        }

        // The single-fragment shape — one context document joining into
        // itself, the classic §3.3 case — lets the merge below skip the
        // result sort entirely: one join call emits `(iter, node)`-sorted
        // rows of one document, which *is* `(iter, document-order)`.
        let single_fragment = units.len() == 1 && units[0].0.len() == 1 && units[0].1.len() == 1;
        // Join-stat deltas are accumulated locally and folded into the
        // engine at the end — the loop below holds immutable borrows of
        // the engine's store. Candidate-set sizes ride along for the
        // per-operator profile.
        let mut stats = JoinStats::default();
        let mut cand_rows: u64 = 0;
        let mut cand_max: u64 = 0;
        // Overlay accounting: candidate rows contributed by delta insert
        // documents, and join calls that read through a merged (non-pure)
        // region stream or a delta document.
        let mut delta_cand_rows: u64 = 0;
        let mut merge_reads: u64 = 0;
        let mut scratch = std::mem::take(&mut self.engine.join_scratch);
        // Morsel budget for candidate scans, from the session's runtime
        // options (1 = sequential; results are thread-count invariant).
        scratch.set_morsel_threads(self.engine.options.threads);
        // Governance handle for the scan/merge kernels, so a deadline
        // or cancellation interrupts the join mid-kernel.
        scratch.set_budget(self.engine.budget.clone());

        let mut rows: Vec<(u32, NodeRef)> = Vec::new();
        // The unit loop runs inside a closure so the taken scratch is
        // restored on *every* exit, error paths included — an index
        // build failure must not silently drop the session's warmed
        // buffer set.
        let joined = (|| -> Result<(), QueryError> {
            for (ctx_docs, targets) in units {
                // Per-unit chokepoint: between fragments is the coarse
                // place a governed join re-reads the clock eagerly.
                if let Some(b) = &self.engine.budget {
                    b.check()?;
                }
                // Sorted, deduplicated context per context document, and the
                // unit-wide iteration domain (rejects complement over it).
                let mut contexts: Vec<(DocId, Vec<IterNode>)> = Vec::with_capacity(ctx_docs.len());
                let mut iter_domain: Vec<u32> = Vec::new();
                for doc_id in ctx_docs {
                    let mut context = std::mem::take(buckets.get_mut(&doc_id).unwrap());
                    context.sort_unstable();
                    context.dedup();
                    iter_domain.extend(context.iter().map(|c| c.iter));
                    contexts.push((doc_id, context));
                }
                iter_domain.sort_unstable();
                iter_domain.dedup();

                for &target in &targets {
                    let target_config = self.doc_config(target);
                    let target_index = self.engine.region_index(target, &target_config)?;
                    // Cross-layer context indexes are fetched up front (the
                    // lookups need the engine mutably; the join below only
                    // borrows).
                    let mut ctx_indexes: Vec<Option<Arc<RegionIndex>>> =
                        Vec::with_capacity(contexts.len());
                    for (ctx_doc, _) in &contexts {
                        ctx_indexes.push(if *ctx_doc != target {
                            let cfg = self.doc_config(*ctx_doc);
                            Some(self.engine.region_index(*ctx_doc, &cfg)?)
                        } else {
                            None
                        });
                    }
                    let doc = self.engine.store.doc(target);
                    // Candidate restriction: explicit sequence, or the
                    // plan's name-test pushdown through the element index
                    // (§4.3) — always against the *target* layer's document.
                    // The element index is borrowed as-is: builder-produced
                    // indexes are strictly ascending by construction and
                    // snapshot-loaded ones are validated at decode time
                    // (SOXD v2), so no copy and no per-execution re-check.
                    let name_candidates: Option<Cow<'_, [u32]>> = if explicit_candidates.is_some() {
                        // Each document is the target of exactly one unit, so
                        // the bucket can be moved out rather than cloned.
                        Some(Cow::Owned(cand_buckets.remove(&target).unwrap_or_default()))
                    } else {
                        op.pushdown
                            .as_deref()
                            .map(|name| Cow::Borrowed(doc.elements_named(name)))
                    };
                    if let Some(cands) = &name_candidates {
                        cand_rows += cands.len() as u64;
                        cand_max = cand_max.max(cands.len() as u64);
                        if self.engine.is_delta_doc(target) {
                            delta_cand_rows += cands.len() as u64;
                        }
                        if target_index.prefers_node_view(cands.len()) {
                            stats.candidate_node_view += 1;
                        } else {
                            stats.candidate_scans += 1;
                        }
                    }
                    // Merge-on-read view over the target layer: the raw
                    // index columns minus the overlay's retracted nodes.
                    // Pure snapshots keep the zero-copy borrow.
                    let target_source = RegionSource::with_retractions(
                        &target_index,
                        self.engine.retractions_of(target),
                    );
                    // A reject over several context layers must complement the
                    // *union* of their selections, not union their complements.
                    let multi_ctx_reject = !axis.is_select() && contexts.len() > 1;
                    let mut selected: Vec<IterNode> = Vec::new();
                    let mut universe: Option<Vec<u32>> = None;
                    for ((ctx_doc, context), ctx_index) in contexts.iter().zip(&ctx_indexes) {
                        let ctx_source = ctx_index.as_deref().map(|idx| {
                            RegionSource::with_retractions(
                                idx,
                                self.engine.retractions_of(*ctx_doc),
                            )
                        });
                        if !target_source.is_pure()
                            || ctx_source.is_some_and(|s| !s.is_pure())
                            || self.engine.is_delta_doc(target)
                            || self.engine.is_delta_doc(*ctx_doc)
                        {
                            merge_reads += 1;
                        }
                        let input = JoinInput {
                            doc,
                            index: target_source,
                            ctx_index: ctx_source,
                            context,
                            candidates: name_candidates.as_deref(),
                            iter_domain: &iter_domain,
                        };
                        let run_axis = if multi_ctx_reject {
                            axis.select_counterpart()
                        } else {
                            axis
                        };
                        let result = evaluate_standoff_join_with(
                            run_axis,
                            strategy,
                            &input,
                            None,
                            &mut scratch,
                        );
                        if multi_ctx_reject {
                            if universe.is_none() {
                                universe = Some(input.candidate_universe());
                            }
                            selected.extend(result);
                        } else {
                            rows.extend(result.into_iter().map(|IterNode { iter, node }| {
                                (iter, NodeRef::tree(target, node))
                            }));
                        }
                    }
                    if multi_ctx_reject {
                        selected.sort_unstable();
                        selected.dedup();
                        let universe = universe.unwrap_or_default();
                        rows.extend(
                            standoff_core::join::post::complement(
                                &selected,
                                &universe,
                                &iter_domain,
                            )
                            .into_iter()
                            .map(|IterNode { iter, node }| (iter, NodeRef::tree(target, node))),
                        );
                    }
                }
            }
            Ok(())
        })();
        // Fold the scan-kernel counters (representation choices, dense
        // blocks, morsels) accumulated inside the join calls into this
        // operator's stat delta before the scratch goes back.
        stats.merge_kernel(scratch.take_kernel_stats());
        self.engine.join_scratch = scratch;
        joined?;
        // Merge per-document results: sort by (iter, doc order) with the
        // key computed once per row, dedup (several context layers can
        // select the same target node). A single-fragment scope skips
        // both — the one join call already emitted merged output.
        if single_fragment || rows.len() <= 1 {
            stats.result_sorts_elided += 1;
            debug_assert!(rows
                .windows(2)
                .all(|w| (w[0].0, self.engine.store.order_key(w[0].1))
                    < (w[1].0, self.engine.store.order_key(w[1].1))));
        } else {
            stats.result_sorts += 1;
            let store = &self.engine.store;
            rows.sort_by_cached_key(|(iter, node)| (*iter, store.order_key(*node)));
            rows.dedup();
        }
        let mut out = NodeTable::with_capacity(rows.len());
        for (iter, node) in rows {
            out.push(iter, node);
        }
        // Post-filter with the node test — unless the plan proved the
        // test is guaranteed by the join itself (pushed-down name test,
        // kind-only test over element output): then the §3.2 trailing
        // `/self::name` step is pure overhead and is elided. The
        // unoptimized reference lowering never sets the flag and keeps
        // the literal trailing step.
        if op.test_guaranteed {
            stats.post_filters_elided += 1;
        } else {
            stats.post_filters += 1;
        }
        // Single fold point: engine counters, registry mirror, and —
        // when profiling — the operator's JoinExec detail.
        self.engine.handles.record_join(&stats);
        if merge_reads > 0 {
            self.engine.handles.delta_merge_reads.add(merge_reads);
        }
        self.engine.join_stats.merge(stats);
        if let Some(p) = self.profile.as_deref_mut() {
            let j = p
                .op_mut(prof_key)
                .join
                .get_or_insert_with(JoinExec::default);
            j.ctx_rows += ctx.iters().len() as u64;
            j.cand_rows += cand_rows;
            j.cand_max = j.cand_max.max(cand_max);
            j.delta_cand_rows += delta_cand_rows;
            j.merge_reads += merge_reads;
            j.stats.merge(stats);
        }
        if op.test_guaranteed {
            return Ok(out);
        }
        Ok(standoff_algebra::staircase::ll_step(
            &self.engine.store,
            &out,
            TreeAxis::SelfAxis,
            test,
        ))
    }

    fn eval_path_expr(&mut self, input: &PlanExpr, step: &PlanExpr) -> Result<LlSeq, QueryError> {
        let t = self.eval(input)?;
        // Scope over the rows of the input; "." bound per row.
        let n = t.len() as u32;
        let map = t.iters().to_vec();
        let mut vars = HashMap::new();
        vars.insert(
            ".".to_string(),
            LlSeq::from_columns((0..n).collect(), t.items().to_vec()),
        );
        self.frames.push(Frame {
            n_iters: n,
            map: Some(map.clone()),
            vars,
            barrier: false,
        });
        let result = self.eval(step);
        self.frames.pop();
        let r = result?.unrestrict(&map);
        // Node results get document order + dedup; atom results keep
        // sequence order (XQuery 3.0 relaxation — simple-map-like).
        match NodeTable::from_llseq(&r) {
            Ok(mut nodes) => {
                nodes.normalize(&self.engine.store);
                Ok(nodes.into_llseq())
            }
            Err(_) => Ok(r),
        }
    }

    fn eval_root_path(&mut self) -> Result<LlSeq, QueryError> {
        let ctx = self
            .lookup(".")
            .map_err(|_| QueryError::dynamic("'/' used without a context item (use doc(...))"))?;
        let mut out = LlSeq::empty();
        for (iter, items) in ctx.groups() {
            let mut last: Option<NodeRef> = None;
            for item in items {
                let node = item
                    .as_node()
                    .ok_or_else(|| QueryError::dynamic("'/' on a non-node context item"))?;
                let root = NodeRef::tree(node.doc, 0);
                if last != Some(root) {
                    out.push(iter, Item::Node(root));
                    last = Some(root);
                }
            }
        }
        Ok(out)
    }

    /// Apply one predicate to a sequence: positional if the predicate
    /// value is numeric, boolean otherwise (XPath 2.0 semantics).
    pub(crate) fn apply_predicate(
        &mut self,
        table: LlSeq,
        predicate: &PlanExpr,
    ) -> Result<LlSeq, QueryError> {
        let n = table.len() as u32;
        let map = table.iters().to_vec();
        // Positions and group sizes within the input's iterations.
        let mut positions = Vec::with_capacity(table.len());
        let mut sizes_by_row = vec![0i64; table.len()];
        {
            let mut start = 0usize;
            while start < table.len() {
                let iter = table.iters()[start];
                let mut end = start;
                while end < table.len() && table.iters()[end] == iter {
                    end += 1;
                }
                for (offset, row) in (start..end).enumerate() {
                    positions.push(Item::Integer(offset as i64 + 1));
                    sizes_by_row[row] = (end - start) as i64;
                }
                start = end;
            }
        }
        let mut vars = HashMap::new();
        vars.insert(
            ".".to_string(),
            LlSeq::from_columns((0..n).collect(), table.items().to_vec()),
        );
        vars.insert(
            "fn:position".to_string(),
            LlSeq::from_columns((0..n).collect(), positions.clone()),
        );
        vars.insert(
            "fn:last".to_string(),
            LlSeq::from_columns(
                (0..n).collect(),
                sizes_by_row.iter().map(|&s| Item::Integer(s)).collect(),
            ),
        );
        self.frames.push(Frame {
            n_iters: n,
            map: Some(map),
            vars,
            barrier: false,
        });
        let cond = self.eval(predicate);
        self.frames.pop();
        let cond = cond?;

        let mut out = LlSeq::empty();
        for (k, position) in positions.iter().enumerate() {
            let g = cond.group(k as u32);
            let keep = match g {
                [] => false,
                [single] => match single {
                    Item::Integer(i) => *i == int_item(position),
                    Item::Double(d) => *d == int_item(position) as f64,
                    other => other.effective_boolean(),
                },
                // Multi-item predicate values: EBV (relaxed as in
                // LlSeq::effective_boolean).
                [_, ..] => true,
            };
            if keep {
                out.push(table.iters()[k], table.items()[k].clone());
            }
        }
        Ok(out)
    }

    // ================= functions =================

    /// Call a user-defined function resolved to `index` at compile time.
    fn eval_udf_call(
        &mut self,
        index: usize,
        name: &str,
        args: &[PlanExpr],
    ) -> Result<LlSeq, QueryError> {
        let decl =
            self.functions.get(index).cloned().ok_or_else(|| {
                QueryError::internal(format!("dangling function index for {name}()"))
            })?;
        if decl.params.len() != args.len() {
            return Err(QueryError::stat(format!(
                "function {name}() expects {} argument(s), got {}",
                decl.params.len(),
                args.len()
            )));
        }
        if self.call_depth >= self.engine.options.recursion_limit {
            return Err(QueryError::dynamic(format!(
                "recursion limit ({}) exceeded in {name}()",
                self.engine.options.recursion_limit
            )));
        }
        let mut vars = HashMap::new();
        for (param, arg) in decl.params.iter().zip(args) {
            vars.insert(param.clone(), self.eval(arg)?);
        }
        let n = self.n_iters();
        self.frames.push(Frame {
            n_iters: n,
            map: Some((0..n).collect()),
            vars,
            barrier: true,
        });
        self.call_depth += 1;
        let result = self.eval(&decl.body);
        self.call_depth -= 1;
        self.frames.pop();
        result
    }

    /// Call a built-in library function by name.
    fn eval_builtin_call(&mut self, name: &str, args: &[PlanExpr]) -> Result<LlSeq, QueryError> {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);

        // Context-dependent zero-argument built-ins.
        if args.is_empty() {
            match local {
                "position" => {
                    return self
                        .lookup("fn:position")
                        .map_err(|_| QueryError::dynamic("position() used outside a predicate"))
                }
                "last" => {
                    return self
                        .lookup("fn:last")
                        .map_err(|_| QueryError::dynamic("last() used outside a predicate"))
                }
                // true()/false() are folded to constants at compile
                // time; handled here only for robustness.
                "true" => return Ok(LlSeq::lifted_const(self.n_iters(), Item::Boolean(true))),
                "false" => return Ok(LlSeq::lifted_const(self.n_iters(), Item::Boolean(false))),
                _ => {}
            }
        }

        let mut arg_tables = Vec::with_capacity(args.len());
        for a in args {
            arg_tables.push(self.eval(a)?);
        }
        functions::call_builtin(self, local, arg_tables)?
            .ok_or_else(|| QueryError::stat(format!("unknown function {name}()")))
    }

    // ================= constructors =================

    fn eval_constructor(&mut self, c: &PlanConstructor) -> Result<LlSeq, QueryError> {
        // Evaluate every enclosed expression once (loop-lifted), then
        // assemble one element per iteration.
        let mut tables: Vec<LlSeq> = Vec::new();
        self.eval_constructor_exprs(c, &mut tables)?;
        let n = self.n_iters();
        let mut out = LlSeq::empty();
        for iter in 0..n {
            let mut builder = DocumentBuilder::new();
            let mut cursor = 0usize;
            self.build_element(c, iter, &tables, &mut cursor, &mut builder)?;
            let doc = builder
                .finish()
                .map_err(|e| QueryError::dynamic(format!("constructor failed: {e}")))?;
            let doc_id = self.engine.store.add(doc, None);
            out.push(iter, Item::Node(NodeRef::tree(doc_id, 1)));
        }
        Ok(out)
    }

    /// Depth-first evaluation of all enclosed expressions of a constructor
    /// tree, in syntactic order (matched by `build_element`'s cursor).
    fn eval_constructor_exprs(
        &mut self,
        c: &PlanConstructor,
        tables: &mut Vec<LlSeq>,
    ) -> Result<(), QueryError> {
        for (_, parts) in &c.attributes {
            for part in parts {
                if let PlanContent::Enclosed(e) = part {
                    let t = self.eval(e)?;
                    tables.push(t);
                }
            }
        }
        for part in &c.content {
            match part {
                PlanContent::Enclosed(e) => {
                    let t = self.eval(e)?;
                    tables.push(t);
                }
                PlanContent::Element(child) => {
                    self.eval_constructor_exprs(child, tables)?;
                }
                PlanContent::Text(_) => {}
            }
        }
        Ok(())
    }

    fn build_element(
        &self,
        c: &PlanConstructor,
        iter: u32,
        tables: &[LlSeq],
        cursor: &mut usize,
        builder: &mut DocumentBuilder,
    ) -> Result<(), QueryError> {
        builder.start_element(&c.name);
        for (attr_name, parts) in &c.attributes {
            let mut value = String::new();
            for part in parts {
                match part {
                    PlanContent::Text(t) => value.push_str(t),
                    PlanContent::Enclosed(_) => {
                        let t = &tables[*cursor];
                        *cursor += 1;
                        let mut first = true;
                        for item in t.group(iter) {
                            if !first {
                                value.push(' ');
                            }
                            first = false;
                            value.push_str(&item.string_value(&self.engine.store));
                        }
                    }
                    PlanContent::Element(_) => unreachable!("no elements in attributes"),
                }
            }
            builder.attribute(attr_name, &value);
        }
        for part in &c.content {
            match part {
                PlanContent::Text(t) => {
                    builder.text(t);
                }
                PlanContent::Element(child) => {
                    self.build_element(child, iter, tables, cursor, builder)?;
                }
                PlanContent::Enclosed(_) => {
                    let t = &tables[*cursor];
                    *cursor += 1;
                    let mut pending_atom = false;
                    for item in t.group(iter) {
                        match item {
                            Item::Node(node) => {
                                self.copy_node(*node, builder)?;
                                pending_atom = false;
                            }
                            atom => {
                                // Adjacent atoms joined with a space.
                                if pending_atom {
                                    builder.text(" ");
                                }
                                builder.text(&atom.string_value(&self.engine.store));
                                pending_atom = true;
                            }
                        }
                    }
                }
            }
        }
        builder.end_element();
        Ok(())
    }

    /// Deep-copy a node into the builder (XQuery constructor content copy
    /// semantics). Attribute nodes become attributes when they arrive
    /// before any other content of the element under construction.
    fn copy_node(&self, node: NodeRef, builder: &mut DocumentBuilder) -> Result<(), QueryError> {
        let doc = self.engine.store.doc(node.doc);
        if let Some(a) = node.id.attr_index() {
            let name = doc.names().lexical(doc.attr_name_id(a));
            builder.attribute(&name, doc.attr_value(a));
            return Ok(());
        }
        let root = node.id.pre().expect("tree node");
        match doc.kind(root) {
            NodeKind::Document => {
                for child in doc.children(root) {
                    self.copy_node(NodeRef::tree(node.doc, child), builder)?;
                }
                return Ok(());
            }
            NodeKind::Text => {
                builder.text(doc.value(root));
                return Ok(());
            }
            NodeKind::Comment => {
                builder.comment(doc.value(root));
                return Ok(());
            }
            NodeKind::Pi => {
                let name = doc.names().lexical(doc.name_id(root));
                builder.pi(&name, doc.value(root));
                return Ok(());
            }
            NodeKind::Element => {}
        }
        // Non-recursive subtree copy via an explicit end-stack.
        let end = root + doc.size(root);
        let mut open: Vec<u32> = Vec::new();
        let mut pre = root;
        while pre <= end {
            while let Some(&top) = open.last() {
                if pre > top + doc.size(top) {
                    builder.end_element();
                    open.pop();
                } else {
                    break;
                }
            }
            match doc.kind(pre) {
                NodeKind::Element => {
                    let name = doc.names().lexical(doc.name_id(pre));
                    builder.start_element(&name);
                    for a in doc.attr_range(pre) {
                        let an = doc.names().lexical(doc.attr_name_id(a));
                        builder.attribute(&an, doc.attr_value(a));
                    }
                    if doc.size(pre) == 0 {
                        builder.end_element();
                    } else {
                        open.push(pre);
                    }
                }
                NodeKind::Text => {
                    builder.text(doc.value(pre));
                }
                NodeKind::Comment => {
                    builder.comment(doc.value(pre));
                }
                NodeKind::Pi => {
                    let name = doc.names().lexical(doc.name_id(pre));
                    builder.pi(&name, doc.value(pre));
                }
                NodeKind::Document => {}
            }
            pre += 1;
        }
        while open.pop().is_some() {
            builder.end_element();
        }
        Ok(())
    }
}

// ================= helpers =================

fn int_item(item: &Item) -> i64 {
    match item {
        Item::Integer(i) => *i,
        _ => unreachable!("positions are integers"),
    }
}

pub(crate) fn int_value(item: &Item, store: &standoff_xml::Store) -> Result<i64, QueryError> {
    match item.atomize(store) {
        Item::Integer(i) => Ok(i),
        Item::Double(d) if d.fract() == 0.0 => Ok(d as i64),
        Item::Untyped(s) | Item::String(s) => s
            .trim()
            .parse()
            .map_err(|_| QueryError::dynamic(format!("'{s}' is not an integer"))),
        other => Err(QueryError::dynamic(format!("'{other}' is not an integer"))),
    }
}

fn arith_items(
    op: ArithOp,
    x: &Item,
    y: &Item,
    store: &standoff_xml::Store,
) -> Result<Item, QueryError> {
    // Integer arithmetic when both sides are integers (except div).
    if let (Item::Integer(a), Item::Integer(b)) = (x, y) {
        let (a, b) = (*a, *b);
        return Ok(match op {
            ArithOp::Add => Item::Integer(a.wrapping_add(b)),
            ArithOp::Sub => Item::Integer(a.wrapping_sub(b)),
            ArithOp::Mul => Item::Integer(a.wrapping_mul(b)),
            ArithOp::IDiv => {
                if b == 0 {
                    return Err(QueryError::dynamic("integer division by zero"));
                }
                Item::Integer(a / b)
            }
            ArithOp::Mod => {
                if b == 0 {
                    return Err(QueryError::dynamic("modulus by zero"));
                }
                Item::Integer(a % b)
            }
            ArithOp::Div => {
                if b == 0 {
                    return Err(QueryError::dynamic("division by zero"));
                }
                if a % b == 0 {
                    Item::Integer(a / b)
                } else {
                    Item::Double(a as f64 / b as f64)
                }
            }
        });
    }
    let a = x
        .as_number(store)
        .ok_or_else(|| QueryError::dynamic(format!("'{x}' is not a number")))?;
    let b = y
        .as_number(store)
        .ok_or_else(|| QueryError::dynamic(format!("'{y}' is not a number")))?;
    Ok(match op {
        ArithOp::Add => Item::Double(a + b),
        ArithOp::Sub => Item::Double(a - b),
        ArithOp::Mul => Item::Double(a * b),
        ArithOp::Div => Item::Double(a / b),
        ArithOp::IDiv => {
            if b == 0.0 {
                return Err(QueryError::dynamic("integer division by zero"));
            }
            Item::Integer((a / b).trunc() as i64)
        }
        ArithOp::Mod => Item::Double(a % b),
    })
}
