//! The plan optimizer: an ordered list of rewrite passes over the
//! lowered plan.
//!
//! Pass order is fixed and guaranteed; each pass runs exactly once, and
//! later passes see the operator placement earlier passes produced:
//!
//! 1. **const-fold** — bottom-up folding of arithmetic, comparisons,
//!    logic and conditionals over compile-time constants. Never folds an
//!    expression whose evaluation could raise a dynamic error (`1 idiv
//!    0` stays in the plan), so run-time error behavior is unchanged.
//! 2. **hoist-invariants** — moves loop-invariant, node-identity-free
//!    subexpressions out of FLWOR iteration scopes into per-FLWOR
//!    hoisted bindings (`$#h0`, `$#h1`, …) that the evaluator computes
//!    once per surviving host iteration instead of once per inner
//!    iteration. Runs before the annotation passes so the StandOff
//!    operators it moves are annotated in their final position.
//! 3. **strategy-select** — chooses each StandOff operator's join
//!    strategy. With a fixed engine strategy this confirms the lowering
//!    annotation; with `auto_strategy` it consults the corpus
//!    [`IndexStats`] ([`StandoffStrategy::pick_for`]) — per-operator
//!    strategy from region-count statistics instead of one global
//!    switch.
//! 4. **pushdown** — decides element-name candidate pushdown (§4.3) per
//!    operator: enabled when the engine allows it, the chosen strategy
//!    consumes candidates, and the step's node test names an element.
//!    This is the `candidate_pushdown && KindTest::Element` decision
//!    that used to live inside the evaluator's join, made once at plan
//!    time. Runs after strategy-select because `naive` (no candidates)
//!    must never carry a pushdown annotation.
//! 5. **estimate** — attaches cardinality estimates (region-index
//!    statistics, pushed-candidate counts from the element-name index)
//!    to every StandOff operator for explain output. Purely
//!    informational; runs last so it sees final strategies and
//!    pushdowns.
//!
//! Hoisting and XQuery error semantics: per XQuery 1.0 §2.3.4 an
//! implementation may evaluate an expression eagerly even when a strict
//! evaluation would not reach it — except inside the untaken branch of a
//! conditional. The hoister therefore treats `if/then/else` branches as
//! barriers but is free to hoist out of `where`-filtered and
//! empty-binding scopes.

use std::collections::HashSet;

use standoff_core::StandoffStrategy;

use crate::compile::PlanContext;
use crate::plan::*;

/// The pass list, in execution order. The `estimate` pass runs only
/// when the context asks for explain-grade estimates
/// ([`PlanContext::estimates`]); the other five always run.
pub const PASSES: [&str; 6] = [
    "const-fold",
    "hoist-invariants",
    "strategy-select",
    "pushdown",
    "elide",
    "estimate",
];

/// Run the pass list over `plan`; returns the names of the passes
/// applied, in order.
pub fn optimize(plan: &mut Plan, ctx: &PlanContext<'_>) -> Vec<&'static str> {
    const_fold(plan);
    hoist_invariants(plan);
    strategy_select(plan, ctx);
    pushdown(plan, ctx);
    elide(plan);
    let mut applied: Vec<&'static str> = PASSES[..5].to_vec();
    if ctx.estimates && ctx.store.is_some() {
        estimate(plan, ctx);
        applied.push("estimate");
    }
    applied
}

// ================= pass 1: constant folding =================

fn const_fold(plan: &mut Plan) {
    plan.for_each_root_mut(|root| root.rewrite_bottom_up(&mut fold_expr));
}

fn fold_expr(e: &mut PlanExpr) {
    use crate::ast::CompOp;
    let folded: Option<Atom> = match e {
        PlanExpr::Neg(inner) => match const_of(inner) {
            Some(Atom::Integer(i)) => Some(Atom::Integer(i.wrapping_neg())),
            Some(Atom::Double(d)) => Some(Atom::Double(-d)),
            _ => None,
        },
        PlanExpr::Arith(op, a, b) => match (const_of(a), const_of(b)) {
            (Some(x), Some(y)) => fold_arith(*op, x, y),
            _ => None,
        },
        PlanExpr::Comparison(op, a, b) if *op != CompOp::Is => match (const_of(a), const_of(b)) {
            (Some(x), Some(y)) => fold_compare(*op, x, y),
            _ => None,
        },
        PlanExpr::And(a, b) => match (const_of(a), const_of(b)) {
            (Some(x), Some(y)) => Some(Atom::Boolean(
                x.effective_boolean() && y.effective_boolean(),
            )),
            _ => None,
        },
        PlanExpr::Or(a, b) => match (const_of(a), const_of(b)) {
            (Some(x), Some(y)) => Some(Atom::Boolean(
                x.effective_boolean() || y.effective_boolean(),
            )),
            _ => None,
        },
        PlanExpr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            // A constant condition selects its branch at compile time —
            // exactly equivalent to run time, where the untaken branch
            // evaluates over an empty restriction and is skipped.
            if let Some(c) = const_of(cond) {
                let branch = if c.effective_boolean() {
                    then_branch
                } else {
                    else_branch
                };
                *e = std::mem::replace(branch, PlanExpr::empty());
            }
            return;
        }
        _ => None,
    };
    if let Some(atom) = folded {
        *e = PlanExpr::Const(atom);
    }
}

fn const_of(e: &PlanExpr) -> Option<&Atom> {
    match e {
        PlanExpr::Const(a) => Some(a),
        _ => None,
    }
}

/// Fold numeric arithmetic, mirroring the evaluator's `arith_items`
/// exactly. Returns `None` — leaving the operator in the plan — whenever
/// evaluation could raise a dynamic error (division by integer zero) or
/// involves non-numeric operands.
fn fold_arith(op: crate::ast::ArithOp, x: &Atom, y: &Atom) -> Option<Atom> {
    use crate::ast::ArithOp::*;
    if let (Atom::Integer(a), Atom::Integer(b)) = (x, y) {
        let (a, b) = (*a, *b);
        return match op {
            Add => Some(Atom::Integer(a.wrapping_add(b))),
            Sub => Some(Atom::Integer(a.wrapping_sub(b))),
            Mul => Some(Atom::Integer(a.wrapping_mul(b))),
            // Division by zero raises at run time; i64::MIN / -1
            // overflows — leave both in the plan untouched.
            IDiv | Mod | Div if b == 0 || (a == i64::MIN && b == -1) => None,
            IDiv => Some(Atom::Integer(a / b)),
            Mod => Some(Atom::Integer(a % b)),
            Div if a % b == 0 => Some(Atom::Integer(a / b)),
            Div => Some(Atom::Double(a as f64 / b as f64)),
        };
    }
    let (a, b) = match (number_of(x), number_of(y)) {
        (Some(a), Some(b)) => (a, b),
        _ => return None, // strings/booleans: defer to run time
    };
    match op {
        Add => Some(Atom::Double(a + b)),
        Sub => Some(Atom::Double(a - b)),
        Mul => Some(Atom::Double(a * b)),
        Div => Some(Atom::Double(a / b)),
        IDiv if b == 0.0 => None, // runtime error: keep
        IDiv => Some(Atom::Integer((a / b).trunc() as i64)),
        Mod => Some(Atom::Double(a % b)),
    }
}

/// Numeric value of a constant, but only for operands the evaluator
/// treats numerically without string parsing.
fn number_of(a: &Atom) -> Option<f64> {
    match a {
        Atom::Integer(i) => Some(*i as f64),
        Atom::Double(d) => Some(*d),
        Atom::String(_) | Atom::Boolean(_) => None,
    }
}

/// Fold a comparison of two constants, conservatively: both numeric
/// (mirrors `Item::general_compare`'s numeric arm) or both strings
/// (codepoint comparison). Mixed or boolean operands defer to run time.
fn fold_compare(op: crate::ast::CompOp, x: &Atom, y: &Atom) -> Option<Atom> {
    use crate::ast::CompOp::*;
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (x, y) {
        (Atom::Integer(a), Atom::Integer(b)) => Some(a.cmp(b)),
        (Atom::String(a), Atom::String(b)) => Some(a.as_ref().cmp(b.as_ref())),
        (Atom::Integer(_) | Atom::Double(_), Atom::Integer(_) | Atom::Double(_)) => {
            number_of(x).unwrap().partial_cmp(&number_of(y).unwrap())
        }
        _ => return None,
    };
    let result = match (ord, op) {
        (Some(o), Eq | ValEq) => o == Ordering::Equal,
        (Some(o), Ne | ValNe) => o != Ordering::Equal,
        (Some(o), Lt | ValLt) => o == Ordering::Less,
        (Some(o), Le | ValLe) => o != Ordering::Greater,
        (Some(o), Gt | ValGt) => o == Ordering::Greater,
        (Some(o), Ge | ValGe) => o != Ordering::Less,
        (None, _) => false, // NaN comparisons are false
        (Some(_), Is) => return None,
    };
    Some(Atom::Boolean(result))
}

// ================= pass 2: loop-invariant hoisting =================

fn hoist_invariants(plan: &mut Plan) {
    // Which user-defined functions (transitively) construct nodes: calls
    // to them are never hoisted, because collapsing per-iteration
    // construction to one shared node is observable through node
    // identity. Recursion defaults to "constructs" via the fixpoint's
    // monotone growth from direct constructors.
    let mut constructs: Vec<bool> = plan
        .functions
        .iter()
        .map(|f| contains_constructor(&f.body))
        .collect();
    loop {
        let mut changed = false;
        for k in 0..plan.functions.len() {
            if constructs[k] {
                continue;
            }
            let mut calls_constructing = false;
            plan.functions[k].body.visit(&mut |e| {
                if let PlanExpr::UdfCall { index, .. } = e {
                    if constructs[*index] {
                        calls_constructing = true;
                    }
                }
            });
            if calls_constructing {
                constructs[k] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut counter = 0usize;
    plan.for_each_root_mut(|root| hoist_in_expr(root, &constructs, &mut counter));
}

fn contains_constructor(e: &PlanExpr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(x, PlanExpr::Constructor(_)) {
            found = true;
        }
    });
    found
}

/// Recursively process an expression tree: at every FLWOR with at least
/// one `for` clause, extract hoistable subexpressions of its `order by`
/// keys and `return` clause into the FLWOR's hoisted-binding list.
fn hoist_in_expr(e: &mut PlanExpr, constructs: &[bool], counter: &mut usize) {
    // Children first so inner FLWORs hoist locally before the outer scan
    // sees them (an outer hoist of a whole inner FLWOR subsumes its
    // local hoists, in which case the inner pass simply ran on a subtree
    // that then moved — harmless).
    e.for_each_child_mut(|c| hoist_in_expr(c, constructs, counter));
    if let PlanExpr::Flwor {
        hoisted,
        clauses,
        order_by,
        return_clause,
        ..
    } = e
    {
        let has_for = clauses.iter().any(|c| matches!(c, PlanClause::For { .. }));
        if !has_for {
            return; // no iteration scope, nothing to gain
        }
        let mut bound: HashSet<String> = HashSet::new();
        for clause in clauses.iter() {
            match clause {
                PlanClause::For { var, at, .. } => {
                    bound.insert(var.clone());
                    if let Some(at) = at {
                        bound.insert(at.clone());
                    }
                }
                PlanClause::Let { var, .. } => {
                    bound.insert(var.clone());
                }
            }
        }
        let mut found: Vec<(String, PlanExpr)> = Vec::new();
        for key in order_by.iter_mut() {
            try_hoist(&mut key.expr, &bound, constructs, counter, &mut found);
        }
        try_hoist(return_clause, &bound, constructs, counter, &mut found);
        hoisted.extend(found);
    }
}

/// Top-down scan for hoistable subtrees. `blocked` is the set of
/// variables bound between the host FLWOR and the current node — a
/// subtree referencing any of them is not invariant *at the host*, but
/// its children may still be.
fn try_hoist(
    e: &mut PlanExpr,
    blocked: &HashSet<String>,
    constructs: &[bool],
    counter: &mut usize,
    found: &mut Vec<(String, PlanExpr)>,
) {
    if hoistable(e, blocked, constructs) {
        let name = format!("#h{}", *counter);
        *counter += 1;
        let expr = std::mem::replace(e, PlanExpr::Var(name.clone()));
        found.push((name, expr));
        return;
    }
    // Descend, extending `blocked` with binders introduced along the
    // way, and stopping at conditional branches (XQuery forbids raising
    // errors from the untaken branch of a conditional, so nothing may be
    // evaluated eagerly out of one).
    match e {
        PlanExpr::IfThenElse { cond, .. } => {
            try_hoist(cond, blocked, constructs, counter, found);
        }
        PlanExpr::Flwor {
            hoisted,
            clauses,
            where_clause,
            order_by,
            return_clause,
        } => {
            let mut inner = blocked.clone();
            for (name, h) in hoisted.iter_mut() {
                try_hoist(h, blocked, constructs, counter, found);
                inner.insert(name.clone());
            }
            for clause in clauses.iter_mut() {
                match clause {
                    PlanClause::For { var, at, seq } => {
                        try_hoist(seq, &inner, constructs, counter, found);
                        inner.insert(var.clone());
                        if let Some(at) = at {
                            inner.insert(at.clone());
                        }
                    }
                    PlanClause::Let { var, value } => {
                        try_hoist(value, &inner, constructs, counter, found);
                        inner.insert(var.clone());
                    }
                }
            }
            if let Some(w) = where_clause {
                try_hoist(w, &inner, constructs, counter, found);
            }
            for key in order_by.iter_mut() {
                try_hoist(&mut key.expr, &inner, constructs, counter, found);
            }
            try_hoist(return_clause, &inner, constructs, counter, found);
        }
        PlanExpr::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            let mut inner = blocked.clone();
            for (var, seq) in bindings.iter_mut() {
                try_hoist(seq, &inner, constructs, counter, found);
                inner.insert(var.clone());
            }
            try_hoist(satisfies, &inner, constructs, counter, found);
        }
        PlanExpr::TreeStep {
            input, predicates, ..
        }
        | PlanExpr::StandoffStep {
            input, predicates, ..
        } => {
            if let Some(input) = input {
                try_hoist(input, blocked, constructs, counter, found);
            }
            let mut inner = blocked.clone();
            inner.extend(context_names());
            for p in predicates.iter_mut() {
                try_hoist(p, &inner, constructs, counter, found);
            }
        }
        PlanExpr::PathExpr { input, step } => {
            try_hoist(input, blocked, constructs, counter, found);
            let mut inner = blocked.clone();
            inner.insert(".".to_string());
            try_hoist(step, &inner, constructs, counter, found);
        }
        PlanExpr::Filter { input, predicate } => {
            try_hoist(input, blocked, constructs, counter, found);
            let mut inner = blocked.clone();
            inner.extend(context_names());
            try_hoist(predicate, &inner, constructs, counter, found);
        }
        other => {
            other.for_each_child_mut(|c| try_hoist(c, blocked, constructs, counter, found));
        }
    }
}

fn context_names() -> [String; 3] {
    [
        ".".to_string(),
        "fn:position".to_string(),
        "fn:last".to_string(),
    ]
}

/// A subtree is hoisted when it (a) is worth hoisting (contains a data
/// access, join, or call), (b) references no variable bound between the
/// host FLWOR and here, and (c) creates no nodes (directly or through
/// any function it can call).
fn hoistable(e: &PlanExpr, blocked: &HashSet<String>, constructs: &[bool]) -> bool {
    let mut expensive = false;
    let mut invariant = true;
    let mut identity_free = true;
    scan(
        e,
        blocked,
        constructs,
        &mut expensive,
        &mut invariant,
        &mut identity_free,
    );
    expensive && invariant && identity_free
}

/// One pass over a candidate subtree, tracking the free-variable and
/// node-construction facts `hoistable` needs. Local binders inside the
/// subtree shadow `blocked` names (a nested `for $x` over a blocked
/// `$x` makes inner `$x` references invariant again).
fn scan(
    e: &PlanExpr,
    blocked: &HashSet<String>,
    constructs: &[bool],
    expensive: &mut bool,
    invariant: &mut bool,
    identity_free: &mut bool,
) {
    match e {
        PlanExpr::Var(name) => {
            if blocked.contains(name) {
                *invariant = false;
            }
        }
        PlanExpr::ContextItem => {
            if blocked.contains(".") {
                *invariant = false;
            }
        }
        PlanExpr::Constructor(_) => {
            *identity_free = false;
            // Still scan enclosed expressions for variable references.
            e.for_each_child(|expr| {
                scan(
                    expr,
                    blocked,
                    constructs,
                    expensive,
                    invariant,
                    identity_free,
                )
            });
        }
        PlanExpr::UdfCall { index, args, .. } => {
            *expensive = true;
            if constructs.get(*index).copied().unwrap_or(true) {
                *identity_free = false;
            }
            for a in args {
                scan(a, blocked, constructs, expensive, invariant, identity_free);
            }
        }
        PlanExpr::BuiltinCall { name, args } => {
            *expensive = true;
            let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
            if args.is_empty() {
                let implicit = match local {
                    "position" => Some("fn:position"),
                    "last" => Some("fn:last"),
                    _ => None,
                };
                if let Some(var) = implicit {
                    if blocked.contains(var) {
                        *invariant = false;
                    }
                }
            }
            for a in args {
                scan(a, blocked, constructs, expensive, invariant, identity_free);
            }
        }
        PlanExpr::TreeStep { input, .. } | PlanExpr::StandoffStep { input, .. } => {
            *expensive = true;
            if input.is_none() && blocked.contains(".") {
                *invariant = false;
            }
            scan_children_with_binders(e, blocked, constructs, expensive, invariant, identity_free);
        }
        PlanExpr::StandoffFn { .. }
        | PlanExpr::RootPath
        | PlanExpr::PathExpr { .. }
        | PlanExpr::Filter { .. }
        | PlanExpr::Flwor { .. }
        | PlanExpr::Quantified { .. } => {
            *expensive = true;
            if matches!(e, PlanExpr::RootPath) && blocked.contains(".") {
                *invariant = false;
            }
            scan_children_with_binders(e, blocked, constructs, expensive, invariant, identity_free);
        }
        _ => {
            scan_children_with_binders(e, blocked, constructs, expensive, invariant, identity_free);
        }
    }
}

/// Recurse into children, removing locally re-bound names from the
/// blocked set for the sub-scopes that bind them.
fn scan_children_with_binders(
    e: &PlanExpr,
    blocked: &HashSet<String>,
    constructs: &[bool],
    expensive: &mut bool,
    invariant: &mut bool,
    identity_free: &mut bool,
) {
    let unblock = |names: &[String], blocked: &HashSet<String>| -> HashSet<String> {
        let mut b = blocked.clone();
        for n in names {
            b.remove(n);
        }
        b
    };
    match e {
        PlanExpr::Flwor {
            hoisted,
            clauses,
            where_clause,
            order_by,
            return_clause,
        } => {
            let mut local: Vec<String> = hoisted.iter().map(|(n, _)| n.clone()).collect();
            for (_, h) in hoisted {
                scan(h, blocked, constructs, expensive, invariant, identity_free);
            }
            for clause in clauses {
                let b = unblock(&local, blocked);
                match clause {
                    PlanClause::For { var, at, seq } => {
                        scan(seq, &b, constructs, expensive, invariant, identity_free);
                        local.push(var.clone());
                        if let Some(at) = at {
                            local.push(at.clone());
                        }
                    }
                    PlanClause::Let { var, value } => {
                        scan(value, &b, constructs, expensive, invariant, identity_free);
                        local.push(var.clone());
                    }
                }
            }
            let b = unblock(&local, blocked);
            if let Some(w) = where_clause {
                scan(w, &b, constructs, expensive, invariant, identity_free);
            }
            for k in order_by {
                scan(&k.expr, &b, constructs, expensive, invariant, identity_free);
            }
            scan(
                return_clause,
                &b,
                constructs,
                expensive,
                invariant,
                identity_free,
            );
        }
        PlanExpr::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            let mut local: Vec<String> = Vec::new();
            for (var, seq) in bindings {
                let b = unblock(&local, blocked);
                scan(seq, &b, constructs, expensive, invariant, identity_free);
                local.push(var.clone());
            }
            let b = unblock(&local, blocked);
            scan(
                satisfies,
                &b,
                constructs,
                expensive,
                invariant,
                identity_free,
            );
        }
        PlanExpr::TreeStep {
            input, predicates, ..
        }
        | PlanExpr::StandoffStep {
            input, predicates, ..
        } => {
            if let Some(input) = input {
                scan(
                    input,
                    blocked,
                    constructs,
                    expensive,
                    invariant,
                    identity_free,
                );
            }
            let b = unblock(&context_names(), blocked);
            for p in predicates {
                scan(p, &b, constructs, expensive, invariant, identity_free);
            }
        }
        PlanExpr::PathExpr { input, step } => {
            scan(
                input,
                blocked,
                constructs,
                expensive,
                invariant,
                identity_free,
            );
            let b = unblock(&[".".to_string()], blocked);
            scan(step, &b, constructs, expensive, invariant, identity_free);
        }
        PlanExpr::Filter { input, predicate } => {
            scan(
                input,
                blocked,
                constructs,
                expensive,
                invariant,
                identity_free,
            );
            let b = unblock(&context_names(), blocked);
            scan(
                predicate,
                &b,
                constructs,
                expensive,
                invariant,
                identity_free,
            );
        }
        other => {
            other.for_each_child(|c| {
                scan(c, blocked, constructs, expensive, invariant, identity_free)
            });
        }
    }
}

// ================= passes 3–5: StandOff operator annotation =================

fn for_each_standoff_op(
    plan: &mut Plan,
    mut f: impl FnMut(&mut StandoffOp, Option<&standoff_algebra::NodeTest>),
) {
    plan.for_each_root_mut(|root| {
        root.rewrite_bottom_up(&mut |e| match e {
            PlanExpr::StandoffStep { op, test, .. } => f(op, Some(test)),
            PlanExpr::StandoffFn { op, .. } => f(op, None),
            _ => {}
        })
    });
}

/// Total occurrences of an element name across the corpus — the size
/// of the candidate sequence a pushdown of `name` would produce. Under
/// an overlay mount this is the *visible* count: retracted nodes are
/// subtracted (both columns are ascending, so a merge-intersection),
/// while delta insert documents count like any other document.
fn corpus_name_count(ctx: &PlanContext<'_>, name: &str) -> Option<u64> {
    let store = ctx.store?;
    let mut total: u64 = 0;
    for id in store.doc_ids() {
        let named = store.doc(id).elements_named(name);
        let mut count = named.len() as u64;
        if let Some(hidden) = ctx.retracted.and_then(|m| m.get(&id.0)) {
            count -= sorted_intersection_count(named, hidden) as u64;
        }
        total += count;
    }
    Some(total)
}

/// `|a ∩ b|` for two ascending slices.
fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Largest per-document pre-rank span (`last − first + 1`) of `name`'s
/// element index — the bitset size a dense candidate representation
/// would build, fed to [`standoff_core::index::dense_repr_preferred`]
/// at explain time. Retractions are ignored: they can only shrink the
/// true span, and the tag is advisory (runtime counters are
/// authoritative).
fn corpus_name_span(ctx: &PlanContext<'_>, name: &str) -> Option<u64> {
    let store = ctx.store?;
    let mut span: u64 = 0;
    for id in store.doc_ids() {
        let named = store.doc(id).elements_named(name);
        if let (Some(&first), Some(&last)) = (named.first(), named.last()) {
            span = span.max((last - first) as u64 + 1);
        }
    }
    Some(span)
}

/// Occurrences of `name` contributed by overlay delta documents alone —
/// the merge-on-read share of a pushdown's candidate sequence. `None`
/// when the mount has no delta documents at all.
fn delta_name_count(ctx: &PlanContext<'_>, name: &str) -> Option<u64> {
    let store = ctx.store?;
    let deltas = ctx.delta_docs?;
    Some(
        store
            .doc_ids()
            .filter(|id| deltas.contains(&id.0))
            .map(|id| store.doc(id).elements_named(name).len() as u64)
            .sum(),
    )
}

fn strategy_select(plan: &mut Plan, ctx: &PlanContext<'_>) {
    if !ctx.options.auto_strategy {
        let forced = ctx.options.strategy;
        for_each_standoff_op(plan, |op, _| op.strategy = forced);
        return;
    }
    // Per-operator selection: the scan an operator pays is bounded by
    // its candidate sequence when a name test will be pushed down
    // (candidate count × worst-case regions per annotation), and by the
    // full region table otherwise — so two steps in one query can get
    // different join algorithms (a rare element name joins per
    // iteration, a corpus-wide one in a single loop-lifted scan).
    for_each_standoff_op(plan, |op, test| {
        let mut stats = ctx.index_stats;
        if ctx.options.candidate_pushdown {
            if let Some(count) = test
                .filter(|t| t.kind == standoff_algebra::KindTest::Element)
                .and_then(|t| t.name.as_deref())
                .and_then(|name| corpus_name_count(ctx, name))
            {
                let scan_bound = count.saturating_mul(stats.max_regions.max(1) as u64);
                stats.entries = stats.entries.min(scan_bound);
            }
        }
        op.strategy = StandoffStrategy::pick_for(&stats);
    });
}

fn pushdown(plan: &mut Plan, ctx: &PlanContext<'_>) {
    let allowed = ctx.options.candidate_pushdown;
    for_each_standoff_op(plan, |op, test| {
        op.pushdown = match test {
            Some(test)
                if allowed
                    && op.strategy != StandoffStrategy::NaiveNoCandidates
                    && test.kind == standoff_algebra::KindTest::Element =>
            {
                test.name.clone()
            }
            _ => None,
        };
    });
}

/// Decide, per StandOff operator, whether the trailing `self::test`
/// post-filter is provably redundant. Join outputs are always annotated
/// *elements* of the candidate side (the region index only indexes
/// elements, and the reject axes complement within that universe), so:
///
/// * a kind-only test — `*`, `element()`, `node()` — always holds;
/// * a name test held by the pushed-down candidate sequence always
///   holds (every emitted node came from the element index of exactly
///   that name);
/// * the built-in function form (no syntactic test, evaluated as `*`)
///   always holds;
/// * anything else — a name test without its pushdown, `text()` & co. —
///   keeps the literal trailing self-step.
///
/// Runs after `pushdown` because the name-test case is only sound once
/// the pushdown decision is final.
fn elide(plan: &mut Plan) {
    use standoff_algebra::KindTest;
    for_each_standoff_op(plan, |op, test| {
        op.test_guaranteed = match test {
            None => true, // function form: evaluated under `*`
            Some(test) => match (&test.name, test.kind) {
                (None, KindTest::Element | KindTest::AnyKind) => true,
                (Some(name), KindTest::Element) => op.pushdown.as_ref() == Some(name),
                _ => false,
            },
        };
    });
}

/// Attach explain-grade cardinality estimates. Gated by the caller
/// ([`optimize`]): estimates feed explain output only, so execution
/// paths skip this per-operator corpus scan entirely.
fn estimate(plan: &mut Plan, ctx: &PlanContext<'_>) {
    let stats = ctx.index_stats;
    for_each_standoff_op(plan, |op, _| {
        let candidates = op
            .pushdown
            .as_ref()
            .and_then(|name| corpus_name_count(ctx, name));
        let delta_candidates = op
            .pushdown
            .as_ref()
            .and_then(|name| delta_name_count(ctx, name));
        let candidate_span = op
            .pushdown
            .as_ref()
            .and_then(|name| corpus_name_span(ctx, name));
        op.estimate = Some(JoinEstimate {
            index: stats,
            candidates,
            delta_candidates,
            candidate_span,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::engine::EngineOptions;
    use crate::parser::parse_query;

    fn optimized(q: &str) -> Plan {
        let parsed = parse_query(q).unwrap();
        let options = EngineOptions::default();
        compile(&parsed, &PlanContext::bare(&options)).unwrap()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let plan = optimized("1 + 2 * 3");
        assert!(matches!(plan.body, PlanExpr::Const(Atom::Integer(7))));
    }

    #[test]
    fn keeps_runtime_errors_unfolded() {
        let plan = optimized("1 idiv 0");
        assert!(matches!(plan.body, PlanExpr::Arith(..)));
    }

    #[test]
    fn folds_constant_conditionals() {
        let plan = optimized("if (1 < 2) then \"yes\" else (1 idiv 0)");
        let PlanExpr::Const(Atom::String(s)) = &plan.body else {
            panic!("expected folded branch, got {:?}", plan.body);
        };
        assert_eq!(s.as_ref(), "yes");
    }

    #[test]
    fn decides_pushdown_per_operator() {
        let plan = optimized("//a/select-narrow::b");
        let PlanExpr::StandoffStep { op, .. } = &plan.body else {
            panic!("expected standoff step");
        };
        assert_eq!(op.pushdown.as_deref(), Some("b"));

        // node() test: no element name to push.
        let plan = optimized("//a/select-narrow::node()");
        let PlanExpr::StandoffStep { op, .. } = &plan.body else {
            panic!("expected standoff step");
        };
        assert_eq!(op.pushdown, None);
    }

    /// Auto mode must choose per operator, not per query: in one plan,
    /// a join against a rare element name (tiny candidate-bounded scan)
    /// gets the per-iteration basic merge join while a join against a
    /// corpus-wide name gets the single-scan loop-lifted join.
    #[test]
    fn auto_strategy_selects_per_operator() {
        use crate::engine::Engine;
        let mut xml = String::from("<d>");
        for k in 0..300 {
            xml.push_str(&format!(r#"<w start="{}" end="{}"/>"#, k * 10, k * 10 + 5));
        }
        xml.push_str(r#"<place start="0" end="9"/><place start="20" end="29"/></d>"#);
        let mut engine = Engine::new();
        let doc = engine.load_document("d.xml", &xml).unwrap();
        engine
            .prebuild_region_index(doc, &standoff_core::StandoffConfig::default())
            .unwrap();
        engine.set_auto_strategy(true);
        let plan = engine
            .compile(
                r#"(doc("d.xml")//place/select-narrow::w,
                    doc("d.xml")//w/select-narrow::place)"#,
            )
            .unwrap();
        let mut by_name = std::collections::HashMap::new();
        plan.visit_exprs(&mut |e| {
            if let PlanExpr::StandoffStep { op, test, .. } = e {
                by_name.insert(test.name.clone().unwrap(), op.strategy);
            }
        });
        assert_eq!(
            by_name["w"],
            standoff_core::StandoffStrategy::LoopLiftedMergeJoin,
            "302-entry index, 300 candidates: loop-lifted"
        );
        assert_eq!(
            by_name["place"],
            standoff_core::StandoffStrategy::BasicMergeJoin,
            "2-candidate scan bound: per-iteration basic join"
        );
    }

    #[test]
    fn no_pushdown_without_candidates_strategy() {
        let parsed = parse_query("//a/select-narrow::b").unwrap();
        let options = EngineOptions {
            strategy: standoff_core::StandoffStrategy::NaiveNoCandidates,
            ..EngineOptions::default()
        };
        let plan = compile(&parsed, &PlanContext::bare(&options)).unwrap();
        let PlanExpr::StandoffStep { op, .. } = &plan.body else {
            panic!("expected standoff step");
        };
        assert_eq!(op.pushdown, None);
    }

    #[test]
    fn hoists_invariant_join_out_of_flwor() {
        let plan = optimized(r#"for $i in 1 to 10 return count(doc("d")//w)"#);
        let PlanExpr::Flwor {
            hoisted,
            return_clause,
            ..
        } = &plan.body
        else {
            panic!("expected flwor, got {:?}", plan.body);
        };
        assert_eq!(hoisted.len(), 1, "{:?}", plan.body);
        assert!(matches!(return_clause.as_ref(), PlanExpr::Var(v) if v.starts_with("#h")));
    }

    #[test]
    fn does_not_hoist_loop_dependent_exprs() {
        let plan = optimized(r#"for $d in (1, 2) return count(doc("u")//w[@k = $d])"#);
        let PlanExpr::Flwor {
            hoisted,
            return_clause,
            ..
        } = &plan.body
        else {
            panic!("expected flwor");
        };
        // The $d-dependent count() stays in the loop (only the invariant
        // doc("u") scan beneath it may hoist)…
        assert!(
            matches!(return_clause.as_ref(), PlanExpr::BuiltinCall { name, .. } if name == "count")
        );
        // …and nothing hoisted references the loop variable.
        for (_, h) in hoisted {
            h.visit(&mut |e| {
                assert!(
                    !matches!(e, PlanExpr::Var(v) if v == "d"),
                    "loop-dependent subtree hoisted: {h:?}"
                );
            });
        }
    }

    #[test]
    fn does_not_hoist_constructors() {
        let plan = optimized(r#"for $i in 1 to 3 return <r>{ count(doc("d")//w) }</r>"#);
        let PlanExpr::Flwor { hoisted, .. } = &plan.body else {
            panic!("expected flwor");
        };
        // The constructor stays; its invariant *enclosed* expression may
        // hoist — node identity is untouched either way.
        for (_, h) in hoisted {
            assert!(!contains_constructor(h));
        }
    }

    #[test]
    fn does_not_hoist_out_of_conditional_branches() {
        let plan =
            optimized(r#"for $i in 1 to 3 return if ($i = 1) then count(doc("d")//w) else 0"#);
        let PlanExpr::Flwor { hoisted, .. } = &plan.body else {
            panic!("expected flwor");
        };
        assert!(hoisted.is_empty(), "{hoisted:?}");
    }

    #[test]
    fn shadowing_rebinds_are_not_blocked() {
        // Inner `for $x` shadows the outer loop's `$x`: the inner FLWOR
        // as a whole is invariant and hoists.
        let plan = optimized(r#"for $x in 1 to 5 return for $x in doc("d")//w return $x/@start"#);
        let PlanExpr::Flwor { hoisted, .. } = &plan.body else {
            panic!("expected flwor");
        };
        assert_eq!(hoisted.len(), 1, "{hoisted:?}");
    }
}
