//! The compiled query plan — the algebraic IR between parsing and
//! execution.
//!
//! A [`Plan`] is what the engine actually runs: the parsed AST
//! ([`crate::ast`]) is *lowered* into this IR by [`crate::compile`] and
//! then rewritten by the ordered pass list in [`crate::optimize`]. The
//! paper's architecture (XQuery compiled by Pathfinder into an algebra
//! over loop-lifted tables, §3.2/§4.3) makes strategy choice and
//! candidate pushdown *plan-time* decisions; this IR encodes them the
//! same way:
//!
//! * every StandOff join operator — axis step or built-in function form —
//!   carries an explicit [`StandoffOp`] annotation: the join
//!   [`StandoffStrategy`] chosen for *this* operator, the element name
//!   pushed down as a candidate sequence (if any), and the optimizer's
//!   cardinality estimate from [`IndexStats`];
//! * user-defined function calls are resolved to an index into the
//!   plan's function table (shadowing of built-ins happens here, once);
//! * FLWOR operators carry the loop-invariant bindings the optimizer
//!   hoisted out of their iteration scope.
//!
//! The same plan object drives both the evaluator ([`crate::eval`]) and
//! the `explain` renderer ([`crate::explain`]) — what explain prints is
//! by construction what executes. Plans are immutable after compilation
//! and `Send + Sync`, so the batch executor shares them across worker
//! threads behind an `Arc` (see [`crate::exec::QueryCache`]).

use std::sync::Arc;

use standoff_algebra::{Item, NodeTest, TreeAxis};
use standoff_core::{IndexStats, StandoffAxis, StandoffConfig, StandoffStrategy};

use crate::ast::{ArithOp, CompOp};

/// A fully compiled, optimized, executable query.
#[derive(Clone, Debug)]
pub struct Plan {
    /// `declare option` pairs from the prolog (kept for explain output).
    pub options: Vec<(String, String)>,
    /// The StandOff configuration extracted from the prolog's
    /// `standoff-*` options, validated at compile time.
    pub config: StandoffConfig,
    /// Names of `declare variable $x external` declarations; values are
    /// bound through `Engine::bind_external` before execution.
    pub externals: Vec<String>,
    /// `declare variable $x := expr` bindings, in declaration order.
    pub globals: Vec<(String, PlanExpr)>,
    /// User-defined functions; [`PlanExpr::UdfCall`] indexes this table.
    pub functions: Vec<Arc<PlanFunction>>,
    /// The query body.
    pub body: PlanExpr,
    /// Names of the optimizer passes applied, in order (empty for the
    /// unoptimized reference lowering).
    pub passes: Vec<&'static str>,
}

/// A compiled user-defined function.
#[derive(Clone, Debug)]
pub struct PlanFunction {
    pub name: String,
    pub params: Vec<String>,
    pub body: PlanExpr,
}

/// A compile-time constant: the atomic literals plus the booleans that
/// constant folding produces. Deliberately node-free — nodes only exist
/// at run time.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    Integer(i64),
    Double(f64),
    String(Arc<str>),
    Boolean(bool),
}

impl Atom {
    pub fn str(s: impl AsRef<str>) -> Atom {
        Atom::String(Arc::from(s.as_ref()))
    }

    /// The run-time item this constant lifts to.
    pub fn to_item(&self) -> Item {
        match self {
            Atom::Integer(i) => Item::Integer(*i),
            Atom::Double(d) => Item::Double(*d),
            Atom::String(s) => Item::String(Arc::clone(s)),
            Atom::Boolean(b) => Item::Boolean(*b),
        }
    }

    /// Effective boolean value of this single-item constant (mirrors
    /// [`Item::effective_boolean`]).
    pub fn effective_boolean(&self) -> bool {
        match self {
            Atom::Boolean(b) => *b,
            Atom::Integer(i) => *i != 0,
            Atom::Double(d) => *d != 0.0 && !d.is_nan(),
            Atom::String(s) => !s.is_empty(),
        }
    }
}

/// Plan-time annotations of one StandOff join operator: the §4.4/§4.5
/// decisions the interpreter used to re-make on every evaluation, fixed
/// here once by the optimizer.
#[derive(Clone, Debug)]
pub struct StandoffOp {
    /// The axis (select/reject × narrow/wide).
    pub axis: StandoffAxis,
    /// The join algorithm chosen for this operator.
    pub strategy: StandoffStrategy,
    /// `Some(name)`: push the element index for `name` into the region
    /// index as a candidate sequence (§4.3). `None`: scan the full
    /// region index and post-filter.
    pub pushdown: Option<String>,
    /// Plan-proven guarantee that every node this join emits satisfies
    /// the step's node test — join outputs are always annotated elements,
    /// and a pushed-down name test restricts them to that name — so the
    /// evaluator skips the trailing `self::test` post-filter (§3.2's
    /// closing step) entirely. Set by the optimizer's `elide` pass; the
    /// unoptimized reference lowering leaves it `false` and keeps the
    /// literal behavior.
    pub test_guaranteed: bool,
    /// Optimizer cardinality estimate, when corpus statistics were
    /// available at compile time.
    pub estimate: Option<JoinEstimate>,
}

impl StandoffOp {
    /// An operator with the given axis and strategy, no pushdown, no
    /// post-filter elision and no estimate — the state lowering produces
    /// before the optimizer runs.
    pub fn new(axis: StandoffAxis, strategy: StandoffStrategy) -> StandoffOp {
        StandoffOp {
            axis,
            strategy,
            pushdown: None,
            test_guaranteed: false,
            estimate: None,
        }
    }
}

/// Estimated cardinalities of one StandOff join, derived from
/// [`IndexStats`] and the element-name index at optimization time.
#[derive(Clone, Copy, Debug)]
pub struct JoinEstimate {
    /// Region-index statistics of the corpus the plan was compiled
    /// against.
    pub index: IndexStats,
    /// Estimated candidate count after name-test pushdown (total
    /// occurrences of the pushed element name across the *visible*
    /// corpus — overlay retractions already subtracted).
    pub candidates: Option<u64>,
    /// Share of `candidates` contributed by overlay delta documents
    /// (pending inserts). `None` on a pure-snapshot mount.
    pub delta_candidates: Option<u64>,
    /// Largest per-document pre-rank span (`last − first + 1`) of the
    /// pushed element name — the bitset size the dense candidate
    /// representation would have to build, so explain can report the
    /// same sparse/dense choice the scan kernel will make.
    pub candidate_span: Option<u64>,
}

/// One `for`/`let` binding of a compiled FLWOR.
#[derive(Clone, Debug)]
pub enum PlanClause {
    For {
        var: String,
        at: Option<String>,
        seq: PlanExpr,
    },
    Let {
        var: String,
        value: PlanExpr,
    },
}

/// A compiled `order by` key.
#[derive(Clone, Debug)]
pub struct PlanOrderKey {
    pub expr: PlanExpr,
    pub descending: bool,
}

/// Content of a compiled element constructor.
#[derive(Clone, Debug)]
pub enum PlanContent {
    Text(String),
    Enclosed(PlanExpr),
    Element(Box<PlanConstructor>),
}

/// A compiled direct element constructor.
#[derive(Clone, Debug)]
pub struct PlanConstructor {
    pub name: String,
    pub attributes: Vec<(String, Vec<PlanContent>)>,
    pub content: Vec<PlanContent>,
}

/// Compiled expressions — the operators the evaluator executes.
///
/// Differences from the surface AST ([`crate::ast::Expr`]):
///
/// * literals (and folded subtrees) are [`PlanExpr::Const`];
/// * path steps split into tree-axis staircase joins
///   ([`PlanExpr::TreeStep`]) and annotated StandOff joins
///   ([`PlanExpr::StandoffStep`]);
/// * function calls are resolved: [`PlanExpr::UdfCall`] (index into the
///   plan's function table), [`PlanExpr::StandoffFn`] (the paper's
///   Figure 3 built-in join form, annotated like a step), or
///   [`PlanExpr::BuiltinCall`] (library dispatch by name);
/// * FLWORs carry optimizer-hoisted loop-invariant bindings.
#[derive(Clone, Debug)]
pub enum PlanExpr {
    /// A compile-time constant, lifted per iteration at run time.
    Const(Atom),
    /// `$x` — also the reference form of hoisted bindings (`$#h0`).
    Var(String),
    /// `.`
    ContextItem,
    /// Sequence construction.
    Sequence(Vec<PlanExpr>),
    /// FLWOR with optimizer-hoisted loop-invariant bindings: each
    /// `(name, expr)` in `hoisted` is evaluated once per surviving host
    /// iteration — after the `where` restriction, before `order
    /// by`/`return` — instead of once per inner iteration.
    Flwor {
        hoisted: Vec<(String, PlanExpr)>,
        clauses: Vec<PlanClause>,
        where_clause: Option<Box<PlanExpr>>,
        order_by: Vec<PlanOrderKey>,
        return_clause: Box<PlanExpr>,
    },
    Quantified {
        every: bool,
        bindings: Vec<(String, PlanExpr)>,
        satisfies: Box<PlanExpr>,
    },
    IfThenElse {
        cond: Box<PlanExpr>,
        then_branch: Box<PlanExpr>,
        else_branch: Box<PlanExpr>,
    },
    Or(Box<PlanExpr>, Box<PlanExpr>),
    And(Box<PlanExpr>, Box<PlanExpr>),
    Comparison(CompOp, Box<PlanExpr>, Box<PlanExpr>),
    Arith(ArithOp, Box<PlanExpr>, Box<PlanExpr>),
    Range(Box<PlanExpr>, Box<PlanExpr>),
    Neg(Box<PlanExpr>),
    Union(Box<PlanExpr>, Box<PlanExpr>),
    Intersect(Box<PlanExpr>, Box<PlanExpr>),
    Except(Box<PlanExpr>, Box<PlanExpr>),
    /// Tree-axis path step: a loop-lifted staircase join.
    TreeStep {
        input: Option<Box<PlanExpr>>,
        axis: TreeAxis,
        test: NodeTest,
        predicates: Vec<PlanExpr>,
    },
    /// StandOff-axis path step: an annotated StandOff join.
    StandoffStep {
        input: Option<Box<PlanExpr>>,
        op: StandoffOp,
        test: NodeTest,
        predicates: Vec<PlanExpr>,
    },
    /// `input/expr` where the right-hand side is not an axis step.
    PathExpr {
        input: Box<PlanExpr>,
        step: Box<PlanExpr>,
    },
    /// `/...` — navigate from the context node's document root.
    RootPath,
    /// Postfix predicate `E[p]`.
    Filter {
        input: Box<PlanExpr>,
        predicate: Box<PlanExpr>,
    },
    /// Call of a user-defined function, resolved at compile time.
    UdfCall {
        index: usize,
        name: String,
        args: Vec<PlanExpr>,
    },
    /// `select-narrow($ctx[, $cands])` and friends — the StandOff join
    /// as a built-in function (implementation Alternative 3), annotated
    /// exactly like an axis step. An explicit candidate sequence
    /// overrides name-test pushdown.
    StandoffFn {
        op: StandoffOp,
        ctx: Box<PlanExpr>,
        candidates: Option<Box<PlanExpr>>,
    },
    /// Built-in library function, dispatched by (local) name at run
    /// time, exactly as the interpreter did.
    BuiltinCall {
        name: String,
        args: Vec<PlanExpr>,
    },
    /// Direct element constructor — creates one element per iteration
    /// (never hoisted: node identity is per-iteration observable).
    Constructor(PlanConstructor),
}

impl PlanExpr {
    /// An empty sequence.
    pub fn empty() -> PlanExpr {
        PlanExpr::Sequence(Vec::new())
    }

    /// Visit this expression and all sub-expressions (including step
    /// predicates, constructor content, and hoisted FLWOR bindings),
    /// pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&PlanExpr)) {
        f(self);
        self.for_each_child(|c| c.visit(f));
    }

    /// Apply `f` to every direct child expression.
    pub fn for_each_child(&self, mut f: impl FnMut(&PlanExpr)) {
        match self {
            PlanExpr::Const(_) | PlanExpr::Var(_) | PlanExpr::ContextItem | PlanExpr::RootPath => {}
            PlanExpr::Sequence(items) => items.iter().for_each(&mut f),
            PlanExpr::Flwor {
                hoisted,
                clauses,
                where_clause,
                order_by,
                return_clause,
            } => {
                for (_, e) in hoisted {
                    f(e);
                }
                for c in clauses {
                    match c {
                        PlanClause::For { seq, .. } => f(seq),
                        PlanClause::Let { value, .. } => f(value),
                    }
                }
                if let Some(w) = where_clause {
                    f(w);
                }
                for k in order_by {
                    f(&k.expr);
                }
                f(return_clause);
            }
            PlanExpr::Quantified {
                bindings,
                satisfies,
                ..
            } => {
                for (_, e) in bindings {
                    f(e);
                }
                f(satisfies);
            }
            PlanExpr::IfThenElse {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            PlanExpr::Or(a, b)
            | PlanExpr::And(a, b)
            | PlanExpr::Comparison(_, a, b)
            | PlanExpr::Arith(_, a, b)
            | PlanExpr::Range(a, b)
            | PlanExpr::Union(a, b)
            | PlanExpr::Intersect(a, b)
            | PlanExpr::Except(a, b) => {
                f(a);
                f(b);
            }
            PlanExpr::Neg(e) => f(e),
            PlanExpr::TreeStep {
                input, predicates, ..
            }
            | PlanExpr::StandoffStep {
                input, predicates, ..
            } => {
                if let Some(input) = input {
                    f(input);
                }
                predicates.iter().for_each(&mut f);
            }
            PlanExpr::PathExpr { input, step } => {
                f(input);
                f(step);
            }
            PlanExpr::Filter { input, predicate } => {
                f(input);
                f(predicate);
            }
            PlanExpr::UdfCall { args, .. } | PlanExpr::BuiltinCall { args, .. } => {
                args.iter().for_each(&mut f)
            }
            PlanExpr::StandoffFn {
                ctx, candidates, ..
            } => {
                f(ctx);
                if let Some(c) = candidates {
                    f(c);
                }
            }
            PlanExpr::Constructor(c) => visit_constructor(c, &mut f),
        }
    }
}

impl PlanExpr {
    /// Apply `f` to every direct child expression, mutably (the
    /// optimizer's rewrite substrate).
    pub fn for_each_child_mut(&mut self, mut f: impl FnMut(&mut PlanExpr)) {
        match self {
            PlanExpr::Const(_) | PlanExpr::Var(_) | PlanExpr::ContextItem | PlanExpr::RootPath => {}
            PlanExpr::Sequence(items) => items.iter_mut().for_each(&mut f),
            PlanExpr::Flwor {
                hoisted,
                clauses,
                where_clause,
                order_by,
                return_clause,
            } => {
                for (_, e) in hoisted {
                    f(e);
                }
                for c in clauses {
                    match c {
                        PlanClause::For { seq, .. } => f(seq),
                        PlanClause::Let { value, .. } => f(value),
                    }
                }
                if let Some(w) = where_clause {
                    f(w);
                }
                for k in order_by {
                    f(&mut k.expr);
                }
                f(return_clause);
            }
            PlanExpr::Quantified {
                bindings,
                satisfies,
                ..
            } => {
                for (_, e) in bindings {
                    f(e);
                }
                f(satisfies);
            }
            PlanExpr::IfThenElse {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            PlanExpr::Or(a, b)
            | PlanExpr::And(a, b)
            | PlanExpr::Comparison(_, a, b)
            | PlanExpr::Arith(_, a, b)
            | PlanExpr::Range(a, b)
            | PlanExpr::Union(a, b)
            | PlanExpr::Intersect(a, b)
            | PlanExpr::Except(a, b) => {
                f(a);
                f(b);
            }
            PlanExpr::Neg(e) => f(e),
            PlanExpr::TreeStep {
                input, predicates, ..
            }
            | PlanExpr::StandoffStep {
                input, predicates, ..
            } => {
                if let Some(input) = input {
                    f(input);
                }
                predicates.iter_mut().for_each(&mut f);
            }
            PlanExpr::PathExpr { input, step } => {
                f(input);
                f(step);
            }
            PlanExpr::Filter { input, predicate } => {
                f(input);
                f(predicate);
            }
            PlanExpr::UdfCall { args, .. } | PlanExpr::BuiltinCall { args, .. } => {
                args.iter_mut().for_each(&mut f)
            }
            PlanExpr::StandoffFn {
                ctx, candidates, ..
            } => {
                f(ctx);
                if let Some(c) = candidates {
                    f(c);
                }
            }
            PlanExpr::Constructor(c) => visit_constructor_mut(c, &mut f),
        }
    }

    /// Post-order mutable rewrite: children first, then `f(self)` — so a
    /// rewrite sees already-rewritten children (constant folding's
    /// bottom-up order).
    pub fn rewrite_bottom_up(&mut self, f: &mut impl FnMut(&mut PlanExpr)) {
        self.for_each_child_mut(|c| c.rewrite_bottom_up(f));
        f(self);
    }
}

fn visit_constructor_mut(c: &mut PlanConstructor, f: &mut impl FnMut(&mut PlanExpr)) {
    for (_, parts) in &mut c.attributes {
        for part in parts {
            if let PlanContent::Enclosed(e) = part {
                f(e);
            }
        }
    }
    for part in &mut c.content {
        match part {
            PlanContent::Enclosed(e) => f(e),
            PlanContent::Element(child) => visit_constructor_mut(child, f),
            PlanContent::Text(_) => {}
        }
    }
}

fn visit_constructor(c: &PlanConstructor, f: &mut impl FnMut(&PlanExpr)) {
    for (_, parts) in &c.attributes {
        for part in parts {
            if let PlanContent::Enclosed(e) = part {
                f(e);
            }
        }
    }
    for part in &c.content {
        match part {
            PlanContent::Enclosed(e) => f(e),
            PlanContent::Element(child) => visit_constructor(child, f),
            PlanContent::Text(_) => {}
        }
    }
}

impl Plan {
    /// Visit every expression in the plan — body, globals, hoisted
    /// bindings, and user-defined function bodies.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&PlanExpr)) {
        for (_, e) in &self.globals {
            e.visit(f);
        }
        for func in &self.functions {
            func.body.visit(f);
        }
        self.body.visit(f);
    }

    /// Mutably visit every root expression of the plan (global values,
    /// function bodies, the query body); `f` is responsible for its own
    /// recursion. Function bodies are copy-on-write: plans are only
    /// mutated before they are shared.
    pub fn for_each_root_mut(&mut self, mut f: impl FnMut(&mut PlanExpr)) {
        for (_, e) in &mut self.globals {
            f(e);
        }
        for func in &mut self.functions {
            f(&mut Arc::make_mut(func).body);
        }
        f(&mut self.body);
    }
}
