//! The writer handle over a mounted corpus.
//!
//! [`WritableEngine`] pairs an immutable [`LayerSet`] with its pending
//! [`DeltaSet`] and the [`SharedEngine`] currently serving readers.
//! Mutation is copy-on-write at corpus granularity:
//!
//! * [`WritableEngine::apply`] validates a whole op batch against the
//!   mounted set, then remounts base + delta behind a **fresh store
//!   generation** and swaps the shared handle — either every op of the
//!   batch lands or none does;
//! * readers never block and never see a half-applied batch: a
//!   [`Session`] stamped out before the swap keeps its `Arc`'d corpus
//!   alive and consistent until dropped, while new sessions (and plan
//!   caches keyed by [`SharedEngine::generation`]) pick up the new view;
//! * [`WritableEngine::compact`] folds the delta into a fresh, delta-free
//!   layer set (`standoff_store::compact`) and remounts it — the point
//!   where merge-on-read overhead drops back to the pure zero-copy path,
//!   and the set worth writing out as the next snapshot.
//!
//! Remounting is cheap in the way that matters: documents and region
//! indexes are `Arc`-shared with the layer set, so a remount re-plumbs
//! pointers and rebuilds only the per-layer delta documents (usually a
//! few dozen annotations).
//!
//! With a [`DeltaWal`] attached ([`WritableEngine::set_wal`]), `apply`
//! journals the validated batch to the write-ahead log — fsync'd —
//! *before* the swap makes it visible, so a batch that `apply` reported
//! as committed survives SIGKILL: mount-time recovery replays the WAL
//! on top of the sidecar checkpoint. [`WritableEngine::truncate_wal`]
//! resets the journal once the pending delta has been checkpointed
//! durably elsewhere (sidecar rewrite or compacted snapshot).

use standoff_core::fault;
use standoff_store::{ops_to_text, DeltaOp, DeltaSet, DeltaWal, LayerSet};

use crate::engine::{Engine, EngineOptions, Session, SharedEngine};
use crate::error::QueryError;

/// A mounted corpus that accepts annotation-layer mutations.
pub struct WritableEngine {
    set: LayerSet,
    delta: DeltaSet,
    options: EngineOptions,
    shared: SharedEngine,
    wal: Option<DeltaWal>,
}

impl WritableEngine {
    /// Mount `set` writable, with an empty delta, under `options`.
    pub fn mount(set: LayerSet, options: EngineOptions) -> Result<WritableEngine, QueryError> {
        let delta = DeltaSet::new();
        let shared = remount(&set, &delta, &options)?;
        Ok(WritableEngine {
            set,
            delta,
            options,
            shared,
            wal: None,
        })
    }

    /// Mount `set` with mutations already pending (e.g. a delta sidecar
    /// replayed from disk).
    pub fn mount_with_delta(
        set: LayerSet,
        delta: DeltaSet,
        options: EngineOptions,
    ) -> Result<WritableEngine, QueryError> {
        let shared = remount(&set, &delta, &options)?;
        Ok(WritableEngine {
            set,
            delta,
            options,
            shared,
            wal: None,
        })
    }

    /// Attach (or detach, with `None`) a delta write-ahead log. Returns
    /// the previously attached handle. Once attached, every successful
    /// [`WritableEngine::apply`] journals its batch durably before the
    /// swap; the caller is responsible for having replayed the WAL into
    /// the mounted delta first (see `DeltaWal::open`).
    pub fn set_wal(&mut self, wal: Option<DeltaWal>) -> Option<DeltaWal> {
        std::mem::replace(&mut self.wal, wal)
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&DeltaWal> {
        self.wal.as_ref()
    }

    /// Reset the attached WAL to its empty (header-only) state. Call
    /// only after the pending delta has been made durable elsewhere —
    /// an atomic sidecar rewrite or a compacted snapshot — otherwise
    /// committed batches are lost on the next crash. A no-op without an
    /// attached WAL.
    pub fn truncate_wal(&mut self) -> Result<(), QueryError> {
        if let Some(wal) = self.wal.as_mut() {
            wal.truncate()
                .map_err(|e| QueryError::stat(e.to_string()))?;
        }
        Ok(())
    }

    /// The shared read handle over the current corpus view. Clone it
    /// freely; it stays valid (and consistent) across later mutations.
    pub fn shared(&self) -> SharedEngine {
        self.shared.clone()
    }

    /// A fresh session over the current view.
    pub fn session(&self) -> Session {
        self.shared.session()
    }

    /// The current store-generation stamp; bumps on every successful
    /// [`WritableEngine::apply`] and [`WritableEngine::compact`].
    pub fn generation(&self) -> u64 {
        self.shared.generation()
    }

    /// The mounted (immutable) layer set.
    pub fn layer_set(&self) -> &LayerSet {
        &self.set
    }

    /// The pending mutations; empty right after mount or compaction.
    pub fn delta(&self) -> &DeltaSet {
        &self.delta
    }

    /// Apply a batch of mutations atomically.
    ///
    /// The batch validates against a copy of the pending delta first;
    /// any rejected op (unknown layer, base-layer write, retract that
    /// matches nothing, ...) fails the whole call and leaves the mounted
    /// view — and the pending delta — untouched. On success the corpus
    /// remounts under a fresh generation and `apply` returns the number
    /// of ops recorded.
    ///
    /// With a WAL attached, the validated batch is appended and fsync'd
    /// *before* the swap: if `apply` returns `Ok`, the batch survives a
    /// crash; if the process dies between journal and swap, recovery
    /// replays the batch and converges on the same state.
    pub fn apply(&mut self, ops: impl IntoIterator<Item = DeltaOp>) -> Result<usize, QueryError> {
        let batch: Vec<DeltaOp> = ops.into_iter().collect();
        let mut next = self.delta.clone();
        let n = next
            .apply_all(batch.iter().cloned(), &self.set)
            .map_err(|e| QueryError::stat(e.to_string()))?;
        if n == 0 {
            return Ok(0);
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&ops_to_text(&batch))
                .map_err(|e| QueryError::stat(e.to_string()))?;
        }
        fault::point("engine.apply.before_swap");
        self.shared = remount(&self.set, &next, &self.options)?;
        self.delta = next;
        Ok(n)
    }

    /// Fold the pending delta into a fresh, delta-free layer set and
    /// remount it (fresh generation). Returns the compacted set —
    /// typically handed to `standoff_store::save_snapshot` next. A
    /// no-op returning the current set when nothing is pending.
    ///
    /// Compaction does **not** touch an attached WAL: truncate it with
    /// [`WritableEngine::truncate_wal`] once the compacted state has
    /// been written out durably.
    pub fn compact(&mut self) -> Result<LayerSet, QueryError> {
        if self.delta.is_empty() {
            return Ok(self.set.clone());
        }
        let folded = standoff_store::compact(&self.set, &self.delta)
            .map_err(|e| QueryError::stat(e.to_string()))?;
        self.shared = remount(&folded, &DeltaSet::new(), &self.options)?;
        self.set = folded.clone();
        self.delta = DeltaSet::new();
        Ok(folded)
    }
}

fn remount(
    set: &LayerSet,
    delta: &DeltaSet,
    options: &EngineOptions,
) -> Result<SharedEngine, QueryError> {
    let mut engine = Engine::with_options(options.clone());
    engine.mount_overlay(set.clone(), delta)?;
    Ok(engine.into_shared())
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_core::StandoffConfig;
    use standoff_xml::parse_document;

    fn writable() -> WritableEngine {
        let base = parse_document(r#"<text>hello stand-off world</text>"#).unwrap();
        let mut set = LayerSet::build("mem://w", base, StandoffConfig::default()).unwrap();
        let tokens = parse_document(
            r#"<tokens>
                 <w start="0" end="4"/>
                 <w start="6" end="14"/>
                 <w start="16" end="20"/>
               </tokens>"#,
        )
        .unwrap();
        set.add_layer("tokens", tokens, StandoffConfig::default())
            .unwrap();
        WritableEngine::mount(set, EngineOptions::default()).unwrap()
    }

    fn count(engine: &WritableEngine, query: &str) -> usize {
        engine.session().run(query).unwrap().len()
    }

    const ALL_W: &str = r#"count(layer("mem://w", "tokens")//w)"#;

    #[test]
    fn apply_bumps_generation_and_changes_results() {
        let mut w = writable();
        let g0 = w.generation();
        assert_eq!(w.session().run(ALL_W).unwrap().as_xml(), "3");
        let n = w
            .apply([DeltaOp::Insert {
                layer: "tokens".into(),
                name: "w".into(),
                start: 5,
                end: 5,
                attrs: vec![],
            }])
            .unwrap();
        assert_eq!(n, 1);
        assert_ne!(w.generation(), g0);
        assert_eq!(w.session().run(ALL_W).unwrap().as_xml(), "4");
    }

    #[test]
    fn failed_batch_leaves_view_untouched() {
        let mut w = writable();
        let g0 = w.generation();
        let err = w.apply([
            DeltaOp::Insert {
                layer: "tokens".into(),
                name: "w".into(),
                start: 5,
                end: 5,
                attrs: vec![],
            },
            DeltaOp::Retract {
                layer: "tokens".into(),
                name: "w".into(),
                start: 99,
                end: 100,
            },
        ]);
        assert!(err.is_err());
        assert_eq!(w.generation(), g0, "failed batch must not swap the view");
        assert!(w.delta().is_empty());
        assert_eq!(w.session().run(ALL_W).unwrap().as_xml(), "3");
    }

    #[test]
    fn old_sessions_survive_mutation() {
        let mut w = writable();
        let mut old = w.session();
        w.apply([DeltaOp::Retract {
            layer: "tokens".into(),
            name: "w".into(),
            start: 0,
            end: 4,
        }])
        .unwrap();
        // The pre-mutation session still sees the pre-mutation corpus.
        assert_eq!(old.run(ALL_W).unwrap().as_xml(), "3");
        assert_eq!(w.session().run(ALL_W).unwrap().as_xml(), "2");
    }

    #[test]
    fn compact_clears_delta_and_preserves_results() {
        let mut w = writable();
        w.apply([
            DeltaOp::Insert {
                layer: "tokens".into(),
                name: "ner".into(),
                start: 6,
                end: 14,
                attrs: vec![("class".into(), "MISC".into())],
            },
            DeltaOp::Retract {
                layer: "tokens".into(),
                name: "w".into(),
                start: 0,
                end: 4,
            },
        ])
        .unwrap();
        let before_w = count(&w, r#"layer("mem://w", "tokens")//w"#);
        let before_ner = count(&w, r#"layer("mem://w", "tokens")//ner"#);
        let g = w.generation();
        let folded = w.compact().unwrap();
        assert_ne!(w.generation(), g);
        assert!(w.delta().is_empty());
        assert_eq!(folded.layer("tokens").unwrap().annotation_count(), 3);
        assert_eq!(count(&w, r#"layer("mem://w", "tokens")//w"#), before_w);
        assert_eq!(count(&w, r#"layer("mem://w", "tokens")//ner"#), before_ner);
        // Compacting again is a no-op.
        let again = w.compact().unwrap();
        assert_eq!(again.layer("tokens").unwrap().annotation_count(), 3);
    }

    #[test]
    fn wal_attached_apply_journals_before_swap_and_replays() {
        let dir = std::env::temp_dir().join(format!("standoff-overlay-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_file = dir.join("delta.ops.wal");

        let mut w = writable();
        let (wal, replayed) = DeltaWal::open(&wal_file).unwrap();
        assert!(replayed.is_empty());
        w.set_wal(Some(wal));
        w.apply([DeltaOp::Insert {
            layer: "tokens".into(),
            name: "w".into(),
            start: 5,
            end: 5,
            attrs: vec![],
        }])
        .unwrap();
        assert_eq!(w.session().run(ALL_W).unwrap().as_xml(), "4");
        drop(w);

        // A fresh process (simulated: fresh mount) replays the journal
        // and converges on the committed state.
        let (wal, replayed) = DeltaWal::open(&wal_file).unwrap();
        assert_eq!(replayed.len(), 1);
        let mut w2 = writable();
        for record in &replayed {
            let ops = standoff_store::parse_ops(&record.ops).unwrap();
            w2.apply(ops).unwrap();
        }
        w2.set_wal(Some(wal));
        assert_eq!(w2.session().run(ALL_W).unwrap().as_xml(), "4");

        // Checkpoint elsewhere, then truncate: the journal is empty on
        // the next open.
        w2.truncate_wal().unwrap();
        let (_, replayed) = DeltaWal::open(&wal_file).unwrap();
        assert!(replayed.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
