//! AST → plan lowering.
//!
//! [`compile`] is the front half of the execution pipeline:
//!
//! ```text
//! parse  →  lower (this module)  →  optimize (crate::optimize)  →  execute
//! ```
//!
//! Lowering is a faithful 1:1 transliteration of the parsed AST into the
//! plan IR — every operator keeps the interpreter's semantics, StandOff
//! joins are annotated with the engine's configured strategy and *no*
//! pushdown, and nothing is reordered. The result of [`lower`] alone is
//! therefore the **direct-AST reference path**: executing it must be
//! observably identical to executing the optimized plan (the
//! `plan_equivalence` test suite enforces this across all strategies).
//!
//! What *is* resolved at lowering time (plan-time decisions that the
//! interpreter used to re-make per evaluation):
//!
//! * the prolog's `standoff-*` options become a validated
//!   [`StandoffConfig`];
//! * user-defined function calls bind to an index in the plan's function
//!   table, replicating the interpreter's shadowing rules exactly (the
//!   four context built-ins `position`/`last`/`true`/`false` win over
//!   same-named UDFs; UDFs win over every other built-in, including the
//!   StandOff join functions — the paper's Figure 2 setup);
//! * unshadowed `true()`/`false()` become constants;
//! * unshadowed `select-narrow($ctx[, $cands])` & friends become
//!   annotated [`PlanExpr::StandoffFn`] join operators.

use std::collections::HashMap;
use std::sync::Arc;

use standoff_core::{IndexStats, StandoffAxis, StandoffConfig};
use standoff_xml::Store;

use crate::ast::*;
use crate::engine::EngineOptions;
use crate::error::QueryError;
use crate::optimize;
use crate::plan::*;

/// Everything the compiler may consult about the engine it compiles
/// for: the evaluation options and (optionally) corpus statistics for
/// the optimizer's cost decisions. Statistics are optional so queries
/// can be compiled and explained without a corpus.
pub struct PlanContext<'a> {
    pub options: &'a EngineOptions,
    /// The document store, for element-name candidate counts (auto
    /// strategy selection and estimates).
    pub store: Option<&'a Store>,
    /// Aggregated statistics of every region index available at compile
    /// time (mounted snapshot indexes and lazily built ones alike).
    pub index_stats: IndexStats,
    /// Run the `estimate` pass (explain-grade cardinality annotations).
    /// Off on execution paths — estimates are only ever read by
    /// explain, and computing them scans the corpus per operator.
    pub estimates: bool,
    /// Per-document retracted node sets of the mounted overlay (doc id →
    /// ascending pres), so name-candidate counts exclude hidden nodes.
    /// `None` when every mounted layer is pure snapshot.
    pub retracted: Option<&'a HashMap<u32, Arc<Vec<u32>>>>,
    /// Doc ids of delta insert documents, so estimates can report how
    /// many candidates the overlay (vs the base snapshot) contributes.
    pub delta_docs: Option<&'a std::collections::HashSet<u32>>,
}

impl<'a> PlanContext<'a> {
    /// A context with options only — no corpus statistics, no
    /// estimates; auto strategy selection falls back to its default.
    pub fn bare(options: &'a EngineOptions) -> PlanContext<'a> {
        PlanContext {
            options,
            store: None,
            index_stats: IndexStats::default(),
            estimates: false,
            retracted: None,
            delta_docs: None,
        }
    }
}

/// Compile a parsed query: lower it into the plan IR and run the full
/// optimizer pass list. This is the production path — `Engine::run`,
/// `Session`s and the batch executor's plan cache all execute plans
/// produced here.
pub fn compile(query: &Query, ctx: &PlanContext<'_>) -> Result<Plan, QueryError> {
    let mut plan = lower(query, ctx)?;
    plan.passes = optimize::optimize(&mut plan, ctx);
    Ok(plan)
}

/// Lower a parsed query without optimizing — the direct-AST reference
/// path. Used by the equivalence test suite and `Engine::run_unoptimized`;
/// production code wants [`compile`].
pub fn lower(query: &Query, ctx: &PlanContext<'_>) -> Result<Plan, QueryError> {
    let config = config_from_prolog(&query.prolog)?;
    // Function-name table first (late binding: bodies may call functions
    // declared after them, and a duplicate name re-binds to the later
    // declaration, as the interpreter's registration loop did).
    let mut fn_index: HashMap<String, usize> = HashMap::new();
    for (k, f) in query.prolog.functions.iter().enumerate() {
        let local = f.name.split_once(':').map(|(_, l)| l).unwrap_or(&f.name);
        fn_index.insert(local.to_string(), k);
    }
    let lowerer = Lowerer {
        fn_index,
        functions: &query.prolog.functions,
        ctx,
    };
    let functions = query
        .prolog
        .functions
        .iter()
        .map(|f| {
            Ok(Arc::new(PlanFunction {
                name: f.name.clone(),
                params: f.params.clone(),
                body: lowerer.lower_expr(&f.body)?,
            }))
        })
        .collect::<Result<Vec<_>, QueryError>>()?;
    let globals = query
        .prolog
        .variables
        .iter()
        .map(|(name, e)| Ok((name.clone(), lowerer.lower_expr(e)?)))
        .collect::<Result<Vec<_>, QueryError>>()?;
    Ok(Plan {
        options: query.prolog.options.clone(),
        config,
        externals: query.prolog.external_variables.clone(),
        globals,
        functions,
        body: lowerer.lower_expr(&query.body)?,
        passes: Vec::new(),
    })
}

struct Lowerer<'a> {
    /// Local function name → index in the plan function table.
    fn_index: HashMap<String, usize>,
    functions: &'a [FunctionDecl],
    ctx: &'a PlanContext<'a>,
}

impl Lowerer<'_> {
    fn lower_expr(&self, expr: &Expr) -> Result<PlanExpr, QueryError> {
        Ok(match expr {
            Expr::IntLit(i) => PlanExpr::Const(Atom::Integer(*i)),
            Expr::DoubleLit(d) => PlanExpr::Const(Atom::Double(*d)),
            Expr::StringLit(s) => PlanExpr::Const(Atom::str(s)),
            Expr::VarRef(name) => PlanExpr::Var(name.clone()),
            Expr::ContextItem => PlanExpr::ContextItem,
            Expr::Sequence(items) => PlanExpr::Sequence(self.lower_all(items)?),
            Expr::Flwor {
                clauses,
                where_clause,
                order_by,
                return_clause,
            } => PlanExpr::Flwor {
                hoisted: Vec::new(),
                clauses: clauses
                    .iter()
                    .map(|c| {
                        Ok(match c {
                            FlworClause::For { var, at, seq } => PlanClause::For {
                                var: var.clone(),
                                at: at.clone(),
                                seq: self.lower_expr(seq)?,
                            },
                            FlworClause::Let { var, value } => PlanClause::Let {
                                var: var.clone(),
                                value: self.lower_expr(value)?,
                            },
                        })
                    })
                    .collect::<Result<Vec<_>, QueryError>>()?,
                where_clause: match where_clause {
                    Some(w) => Some(Box::new(self.lower_expr(w)?)),
                    None => None,
                },
                order_by: order_by
                    .iter()
                    .map(|k| {
                        Ok(PlanOrderKey {
                            expr: self.lower_expr(&k.expr)?,
                            descending: k.descending,
                        })
                    })
                    .collect::<Result<Vec<_>, QueryError>>()?,
                return_clause: Box::new(self.lower_expr(return_clause)?),
            },
            Expr::Quantified {
                every,
                bindings,
                satisfies,
            } => PlanExpr::Quantified {
                every: *every,
                bindings: bindings
                    .iter()
                    .map(|(v, e)| Ok((v.clone(), self.lower_expr(e)?)))
                    .collect::<Result<Vec<_>, QueryError>>()?,
                satisfies: Box::new(self.lower_expr(satisfies)?),
            },
            Expr::IfThenElse {
                cond,
                then_branch,
                else_branch,
            } => PlanExpr::IfThenElse {
                cond: Box::new(self.lower_expr(cond)?),
                then_branch: Box::new(self.lower_expr(then_branch)?),
                else_branch: Box::new(self.lower_expr(else_branch)?),
            },
            Expr::Or(a, b) => PlanExpr::Or(self.lower_box(a)?, self.lower_box(b)?),
            Expr::And(a, b) => PlanExpr::And(self.lower_box(a)?, self.lower_box(b)?),
            Expr::Comparison(op, a, b) => {
                PlanExpr::Comparison(*op, self.lower_box(a)?, self.lower_box(b)?)
            }
            Expr::Arith(op, a, b) => PlanExpr::Arith(*op, self.lower_box(a)?, self.lower_box(b)?),
            Expr::Range(a, b) => PlanExpr::Range(self.lower_box(a)?, self.lower_box(b)?),
            Expr::Neg(e) => PlanExpr::Neg(self.lower_box(e)?),
            Expr::Union(a, b) => PlanExpr::Union(self.lower_box(a)?, self.lower_box(b)?),
            Expr::Intersect(a, b) => PlanExpr::Intersect(self.lower_box(a)?, self.lower_box(b)?),
            Expr::Except(a, b) => PlanExpr::Except(self.lower_box(a)?, self.lower_box(b)?),
            Expr::Step {
                input,
                axis,
                test,
                predicates,
            } => {
                let input = match input {
                    Some(e) => Some(Box::new(self.lower_expr(e)?)),
                    None => None,
                };
                let predicates = self.lower_all(predicates)?;
                match axis {
                    Axis::Tree(t) => PlanExpr::TreeStep {
                        input,
                        axis: *t,
                        test: test.clone(),
                        predicates,
                    },
                    Axis::Standoff(s) => PlanExpr::StandoffStep {
                        input,
                        op: StandoffOp::new(*s, self.ctx.options.strategy),
                        test: test.clone(),
                        predicates,
                    },
                }
            }
            Expr::PathExpr { input, step } => PlanExpr::PathExpr {
                input: self.lower_box(input)?,
                step: self.lower_box(step)?,
            },
            Expr::RootPath(_) => PlanExpr::RootPath,
            Expr::Filter { input, predicate } => PlanExpr::Filter {
                input: self.lower_box(input)?,
                predicate: self.lower_box(predicate)?,
            },
            Expr::FunctionCall { name, args } => self.lower_call(name, args)?,
            Expr::Constructor(c) => PlanExpr::Constructor(self.lower_constructor(c)?),
        })
    }

    fn lower_box(&self, e: &Expr) -> Result<Box<PlanExpr>, QueryError> {
        Ok(Box::new(self.lower_expr(e)?))
    }

    fn lower_all(&self, es: &[Expr]) -> Result<Vec<PlanExpr>, QueryError> {
        es.iter().map(|e| self.lower_expr(e)).collect()
    }

    /// Resolve a function call with the interpreter's exact shadowing
    /// rules (see module docs). Arity of user-defined calls is checked
    /// at run time, as before — a call in a never-executed branch must
    /// not fail the whole query.
    fn lower_call(&self, name: &str, args: &[Expr]) -> Result<PlanExpr, QueryError> {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
        // Context-dependent / constant zero-argument built-ins shadow
        // everything.
        if args.is_empty() {
            match local {
                "true" => return Ok(PlanExpr::Const(Atom::Boolean(true))),
                "false" => return Ok(PlanExpr::Const(Atom::Boolean(false))),
                "position" | "last" => {
                    return Ok(PlanExpr::BuiltinCall {
                        name: name.to_string(),
                        args: Vec::new(),
                    })
                }
                _ => {}
            }
        }
        // User-defined functions shadow the remaining built-ins.
        if let Some(&index) = self.fn_index.get(local).or_else(|| self.fn_index.get(name)) {
            return Ok(PlanExpr::UdfCall {
                index,
                name: self.functions[index].name.clone(),
                args: self.lower_all(args)?,
            });
        }
        // The StandOff joins in built-in function form (Figure 3).
        if let Some(axis) = StandoffAxis::parse(local) {
            if let 1..=2 = args.len() {
                let mut lowered = self.lower_all(args)?;
                let candidates = if lowered.len() == 2 {
                    Some(Box::new(lowered.pop().expect("checked len")))
                } else {
                    None
                };
                return Ok(PlanExpr::StandoffFn {
                    op: StandoffOp::new(axis, self.ctx.options.strategy),
                    ctx: Box::new(lowered.pop().expect("checked len")),
                    candidates,
                });
            }
        }
        Ok(PlanExpr::BuiltinCall {
            name: name.to_string(),
            args: self.lower_all(args)?,
        })
    }

    fn lower_constructor(&self, c: &ElementConstructor) -> Result<PlanConstructor, QueryError> {
        Ok(PlanConstructor {
            name: c.name.clone(),
            attributes: c
                .attributes
                .iter()
                .map(|(n, parts)| Ok((n.clone(), self.lower_contents(parts)?)))
                .collect::<Result<Vec<_>, QueryError>>()?,
            content: self.lower_contents(&c.content)?,
        })
    }

    fn lower_contents(&self, parts: &[ConstructorContent]) -> Result<Vec<PlanContent>, QueryError> {
        parts
            .iter()
            .map(|part| {
                Ok(match part {
                    ConstructorContent::Text(t) => PlanContent::Text(t.clone()),
                    ConstructorContent::Enclosed(e) => PlanContent::Enclosed(self.lower_expr(e)?),
                    ConstructorContent::Element(child) => {
                        PlanContent::Element(Box::new(self.lower_constructor(child)?))
                    }
                })
            })
            .collect()
    }
}

/// Extract the `standoff-*` options of the prolog into a configuration
/// (paper §2); unknown options are ignored, standoff ones are validated.
/// A bad configuration is a compile-time error.
pub fn config_from_prolog(prolog: &Prolog) -> Result<StandoffConfig, QueryError> {
    let mut config = StandoffConfig::default();
    for (name, value) in &prolog.options {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
        match local {
            "standoff-type" => config.position_type = value.clone(),
            "standoff-start" => config.start_name = value.clone(),
            "standoff-end" => config.end_name = value.clone(),
            "standoff-region" => config.region_name = Some(value.clone()),
            "standoff-lenient" => config.lenient = value == "true",
            _ => {} // other engines' options pass through
        }
    }
    config.validate()?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn lower_body(q: &str) -> PlanExpr {
        let parsed = parse_query(q).unwrap();
        let options = EngineOptions::default();
        lower(&parsed, &PlanContext::bare(&options)).unwrap().body
    }

    #[test]
    fn literals_become_constants() {
        assert!(matches!(
            lower_body("42"),
            PlanExpr::Const(Atom::Integer(42))
        ));
        assert!(matches!(
            lower_body("true()"),
            PlanExpr::Const(Atom::Boolean(true))
        ));
    }

    #[test]
    fn standoff_step_carries_engine_strategy() {
        let body = lower_body("//a/select-narrow::b");
        let PlanExpr::StandoffStep { op, .. } = body else {
            panic!("expected standoff step, got {body:?}");
        };
        assert_eq!(op.strategy, EngineOptions::default().strategy);
        assert_eq!(op.pushdown, None, "lowering never decides pushdown");
    }

    #[test]
    fn standoff_builtin_becomes_join_op() {
        let body = lower_body("select-wide(//a, //b)");
        let PlanExpr::StandoffFn { op, candidates, .. } = body else {
            panic!("expected standoff fn, got {body:?}");
        };
        assert_eq!(op.axis, StandoffAxis::SelectWide);
        assert!(candidates.is_some());
    }

    #[test]
    fn udf_shadows_standoff_builtin() {
        let body = lower_body("declare function select-narrow($x) { $x }; select-narrow(1)");
        assert!(matches!(body, PlanExpr::UdfCall { index: 0, .. }));
    }

    #[test]
    fn zero_arg_context_builtins_shadow_udfs() {
        // The interpreter resolved position()/last()/true()/false()
        // before user-defined functions; compilation must replicate.
        let body = lower_body("declare function true() { 0 }; true()");
        assert!(matches!(body, PlanExpr::Const(Atom::Boolean(true))));
    }

    #[test]
    fn bad_standoff_config_is_a_compile_error() {
        let parsed = parse_query(r#"declare option standoff-type "xs:duration"; 1"#).unwrap();
        let options = EngineOptions::default();
        assert!(compile(&parsed, &PlanContext::bare(&options)).is_err());
    }
}
