//! # standoff-xquery
//!
//! An XQuery subset engine with **loop-lifted evaluation** and the four
//! **StandOff XPath axes** of Alink et al. (XIME-P/SIGMOD 2006) — the role
//! MonetDB/XQuery with the Pathfinder compiler plays in the paper.
//!
//! Queries are **compiled**: `parse` ([`ast`]) → `lower` ([`compile`])
//! → `optimize` ([`optimize`], an ordered pass list: constant folding,
//! loop-invariant hoisting, per-operator strategy selection, candidate
//! pushdown, cardinality estimates) → `execute` ([`eval`] over the
//! [`plan`] IR). [`explain`] renders the same plan object that
//! executes, and the batch executor ([`exec`]) caches compiled plans
//! keyed on `(query text, store generation, options fingerprint)`.
//!
//! The engine evaluates every plan operator *once per scope* on
//! `iter|pos|item` tables (see `standoff-algebra`), never once per
//! iteration: a path step inside a for-loop with 100 000 iterations is one
//! bulk [`standoff_algebra::staircase`] or StandOff MergeJoin call. The
//! StandOff steps can be evaluated under any of the paper's strategies
//! ([`standoff_core::StandoffStrategy`]) — that switch is what the Figure 6
//! benchmark sweeps — with strategy and §4.3 candidate pushdown fixed
//! *per operator at plan time*, the way the paper's Pathfinder
//! compilation makes them plan decisions.
//!
//! Supported XQuery subset (everything the paper's queries, UDF baselines
//! and the XMark workload need, and a fair bit more):
//!
//! * prolog: `declare option` (incl. `standoff-*`), `declare namespace`,
//!   `declare variable`, `declare function` (user-defined functions);
//! * FLWOR (`for`/`at`/`let`/`where`/`order by`/`return`), quantified
//!   expressions, `if/then/else`;
//! * full path expressions with all thirteen tree axes, the four StandOff
//!   axes, name/kind tests, predicates (positional and boolean);
//! * general and value comparisons, arithmetic, `to`, `and`/`or`;
//! * direct element constructors with nested enclosed expressions;
//! * a built-in function library (`doc`, `root`, `count`, `position`,
//!   `last`, string and numeric functions, `select-narrow(..)` etc. as
//!   built-in alternatives to the axes).
//!
//! ```
//! use standoff_xquery::Engine;
//! let mut engine = Engine::new();
//! engine.load_document("d.xml", r#"<a><w start="0" end="9"/><w start="3" end="5"/></a>"#)
//!     .unwrap();
//! let result = engine.run(r#"count(doc("d.xml")//w[@start = 0]/select-narrow::w)"#).unwrap();
//! assert_eq!(result.as_strings(), ["2"]);
//! ```

pub mod ast;
pub mod compile;
pub mod engine;
pub mod error;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod functions;
pub mod lexer;
pub mod optimize;
pub mod overlay;
pub mod parser;
pub mod plan;
pub mod profile;
pub mod result;

pub use engine::{Engine, EngineOptions, JoinStats, Session, SharedEngine};
pub use error::QueryError;
pub use exec::{CacheStats, Executor, Governance, QueryCache};
pub use overlay::WritableEngine;
pub use plan::Plan;
pub use profile::{JoinExec, OpMetrics, PlanProfile, QueryProfile};
pub use result::QueryResult;
