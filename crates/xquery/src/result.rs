//! Materialized query results.

use standoff_algebra::Item;
use standoff_xml::{SerializeOptions, Store};

/// The result sequence of a query, with its serialized forms materialized
/// at construction (results no longer reference the engine).
#[derive(Clone, Debug)]
pub struct QueryResult {
    items: Vec<Item>,
    /// String value of each item.
    strings: Vec<String>,
    /// Serialized form of each item (XML markup for nodes).
    serialized: Vec<String>,
}

impl QueryResult {
    pub(crate) fn new(items: Vec<Item>, store: &Store) -> QueryResult {
        let strings = items.iter().map(|i| i.string_value(store)).collect();
        let serialized = items
            .iter()
            .map(|i| match i {
                Item::Node(node) => standoff_xml::serialize_node(
                    store.doc(node.doc),
                    node.id,
                    SerializeOptions::default(),
                ),
                atom => atom.string_value(store),
            })
            .collect();
        QueryResult {
            items,
            strings,
            serialized,
        }
    }

    /// The raw items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the result sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// String value of each item (`fn:string` semantics).
    pub fn as_strings(&self) -> &[String] {
        &self.strings
    }

    /// Serialized form of each item (markup for nodes, lexical form for
    /// atoms).
    pub fn as_serialized(&self) -> &[String] {
        &self.serialized
    }

    /// The whole sequence serialized: element markup concatenated,
    /// adjacent atoms — and adjacent attribute nodes, which have no
    /// self-delimiting markup — separated by a single space.
    pub fn as_xml(&self) -> String {
        let mut out = String::new();
        let mut prev_needs_sep = false;
        for (item, ser) in self.items.iter().zip(&self.serialized) {
            let needs_sep = match item {
                Item::Node(node) => node.id.is_attr(),
                _ => true,
            };
            if prev_needs_sep && needs_sep {
                out.push(' ');
            }
            out.push_str(ser);
            prev_needs_sep = needs_sep;
        }
        out
    }

    /// Convenience for tests: single-item result as string.
    pub fn single(&self) -> Option<&str> {
        if self.items.len() == 1 {
            Some(&self.strings[0])
        } else {
            None
        }
    }
}
