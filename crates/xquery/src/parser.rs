//! Recursive-descent parser for the XQuery subset.
//!
//! One-token lookahead over [`crate::lexer::Lexer`], with two XQuery
//! peculiarities handled explicitly:
//!
//! * keywords are contextual — `for` only starts a FLWOR when followed by
//!   a `$variable`, otherwise it is an element name test;
//! * direct element constructors switch the parser into raw mode at a `<`
//!   that is directly followed by a name in operand position; enclosed
//!   `{ expr }` blocks recursively re-enter token mode.

use standoff_algebra::{KindTest, NodeTest, TreeAxis};

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parse a complete query (prolog + body).
pub fn parse_query(input: &str) -> Result<Query, QueryError> {
    let mut p = Parser::new(input)?;
    let prolog = p.parse_prolog()?;
    let body = p.parse_expr()?;
    p.expect_eof()?;
    Ok(Query { prolog, body })
}

/// Parse a single expression (no prolog).
pub fn parse_expr_str(input: &str) -> Result<Expr, QueryError> {
    let mut p = Parser::new(input)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum expression / constructor nesting depth. The parser is
/// recursive-descent, so without a bound a hostile query like
/// `((((((…` would exhaust the thread stack and abort the process —
/// an abort no `catch_unwind` can contain. One nesting level costs
/// ~16 parser frames (the whole precedence chain), so the limit must
/// stay comfortably inside a 2 MiB worker-thread stack even in debug
/// builds; realistic queries nest far below it either way.
const MAX_NESTING_DEPTH: usize = 64;

struct Parser<'a> {
    input: &'a str,
    lexer: Lexer<'a>,
    current: Token,
    peeked: Option<Token>,
    /// Current expression/constructor nesting depth (see
    /// [`MAX_NESTING_DEPTH`]).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Result<Self, QueryError> {
        let mut lexer = Lexer::new(input);
        let current = lexer.next_token()?;
        Ok(Parser {
            input,
            lexer,
            current,
            peeked: None,
            depth: 0,
        })
    }

    fn enter_nested(&mut self) -> Result<(), QueryError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(format!(
                "query nests deeper than {MAX_NESTING_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn leave_nested(&mut self) {
        self.depth -= 1;
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::parse(msg, self.input, self.current.offset)
    }

    fn advance(&mut self) -> Result<(), QueryError> {
        self.current = match self.peeked.take() {
            Some(t) => t,
            None => self.lexer.next_token()?,
        };
        Ok(())
    }

    fn peek(&mut self) -> Result<&TokenKind, QueryError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next_token()?);
        }
        Ok(&self.peeked.as_ref().unwrap().kind)
    }

    fn eat(&mut self, kind: &TokenKind) -> Result<bool, QueryError> {
        if &self.current.kind == kind {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), QueryError> {
        if &self.current.kind == kind {
            self.advance()
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.current.kind)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<bool, QueryError> {
        if self.current.kind.is_name(kw) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw)? {
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found {:?}", self.current.kind)))
        }
    }

    fn expect_name(&mut self, what: &str) -> Result<String, QueryError> {
        match &self.current.kind {
            TokenKind::Name(n) => {
                let n = n.clone();
                self.advance()?;
                Ok(n)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, QueryError> {
        match &self.current.kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.advance()?;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_variable(&mut self) -> Result<String, QueryError> {
        match &self.current.kind {
            TokenKind::Variable(v) => {
                let v = v.clone();
                self.advance()?;
                Ok(v)
            }
            other => Err(self.err(format!("expected a $variable, found {other:?}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        if self.current.kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing input: {:?}",
                self.current.kind
            )))
        }
    }

    // ----- prolog -----

    fn parse_prolog(&mut self) -> Result<Prolog, QueryError> {
        let mut prolog = Prolog::default();
        while self.current.kind.is_name("declare") {
            let next = match self.peek()? {
                TokenKind::Name(n) => Some(n.clone()),
                _ => None,
            };
            match next {
                Some(n) => match n.as_str() {
                    "option" => {
                        self.advance()?; // declare
                        self.advance()?; // option
                        let name = self.expect_name("option name")?;
                        let value = self.expect_string("option value")?;
                        prolog.options.push((name, value));
                    }
                    "namespace" | "module" => {
                        self.advance()?;
                        self.advance()?;
                        // `declare module namespace p = "uri"` also occurs.
                        let _ = self.eat_keyword("namespace")?;
                        let prefix = self.expect_name("namespace prefix")?;
                        self.expect(&TokenKind::Eq, "'='")?;
                        let uri = self.expect_string("namespace URI")?;
                        prolog.namespaces.push((prefix, uri));
                    }
                    "variable" => {
                        self.advance()?;
                        self.advance()?;
                        let var = self.expect_variable()?;
                        self.skip_type_annotation()?;
                        if self.eat_keyword("external")? {
                            prolog.external_variables.push(var);
                        } else {
                            self.expect(&TokenKind::ColonEq, "':='")?;
                            let value = self.parse_expr_single()?;
                            prolog.variables.push((var, value));
                        }
                    }
                    "function" => {
                        self.advance()?;
                        self.advance()?;
                        let decl = self.parse_function_decl()?;
                        prolog.functions.push(decl);
                    }
                    "boundary-space" | "ordering" | "construction" | "copy-namespaces"
                    | "default" | "base-uri" => {
                        // Accepted and ignored: consume tokens up to the
                        // declaration separator.
                        self.advance()?;
                        while !matches!(self.current.kind, TokenKind::Semicolon | TokenKind::Eof)
                            && !self.current.kind.is_name("declare")
                        {
                            self.advance()?;
                        }
                    }
                    other => {
                        return Err(self.err(format!("unsupported declaration 'declare {other}'")))
                    }
                },
                None => break, // `declare` as an element name in the body
            }
            // The XQuery separator `;` — optional here because the paper's
            // Figure 2/3 listings omit it.
            let _ = self.eat(&TokenKind::Semicolon)?;
        }
        Ok(prolog)
    }

    fn parse_function_decl(&mut self) -> Result<FunctionDecl, QueryError> {
        let name = self.expect_name("function name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if self.current.kind != TokenKind::RParen {
            loop {
                let p = self.expect_variable()?;
                self.skip_type_annotation()?;
                params.push(p);
                if !self.eat(&TokenKind::Comma)? {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        self.skip_type_annotation()?;
        self.expect(&TokenKind::LBrace, "'{'")?;
        let body = self.parse_expr()?;
        self.expect(&TokenKind::RBrace, "'}'")?;
        Ok(FunctionDecl { name, params, body })
    }

    /// `as xs:anyNode*` etc. — parsed and discarded (the engine is
    /// dynamically typed).
    fn skip_type_annotation(&mut self) -> Result<(), QueryError> {
        if self.eat_keyword("as")? {
            self.expect_name("type name")?;
            // Occurrence indicator and kind-test parentheses.
            if self.eat(&TokenKind::LParen)? {
                self.expect(&TokenKind::RParen, "')'")?;
            }
            let _ = self.eat(&TokenKind::Star)?
                || self.eat(&TokenKind::Plus)?
                || self.eat(&TokenKind::Question)?;
        }
        Ok(())
    }

    // ----- expressions -----

    fn parse_expr(&mut self) -> Result<Expr, QueryError> {
        let first = self.parse_expr_single()?;
        if self.current.kind != TokenKind::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&TokenKind::Comma)? {
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn parse_expr_single(&mut self) -> Result<Expr, QueryError> {
        self.enter_nested()?;
        let result = self.parse_expr_single_inner();
        self.leave_nested();
        result
    }

    fn parse_expr_single_inner(&mut self) -> Result<Expr, QueryError> {
        // Contextual keywords: only treat as control flow when the next
        // token fits (otherwise they are path steps).
        if (self.current.kind.is_name("for") || self.current.kind.is_name("let"))
            && matches!(self.peek()?, TokenKind::Variable(_))
        {
            return self.parse_flwor();
        }
        if (self.current.kind.is_name("some") || self.current.kind.is_name("every"))
            && matches!(self.peek()?, TokenKind::Variable(_))
        {
            return self.parse_quantified();
        }
        if self.current.kind.is_name("if") && *self.peek()? == TokenKind::LParen {
            return self.parse_if();
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> Result<Expr, QueryError> {
        let mut clauses = Vec::new();
        loop {
            if self.current.kind.is_name("for") && matches!(self.peek()?, TokenKind::Variable(_)) {
                self.advance()?;
                loop {
                    let var = self.expect_variable()?;
                    self.skip_type_annotation()?;
                    let at = if self.eat_keyword("at")? {
                        Some(self.expect_variable()?)
                    } else {
                        None
                    };
                    self.expect_keyword("in")?;
                    let seq = self.parse_expr_single()?;
                    clauses.push(FlworClause::For { var, at, seq });
                    if !self.eat(&TokenKind::Comma)? {
                        break;
                    }
                }
            } else if self.current.kind.is_name("let")
                && matches!(self.peek()?, TokenKind::Variable(_))
            {
                self.advance()?;
                loop {
                    let var = self.expect_variable()?;
                    self.skip_type_annotation()?;
                    self.expect(&TokenKind::ColonEq, "':='")?;
                    let value = self.parse_expr_single()?;
                    clauses.push(FlworClause::Let { var, value });
                    if !self.eat(&TokenKind::Comma)? {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let where_clause = if self.eat_keyword("where")? {
            Some(Box::new(self.parse_expr_single()?))
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.current.kind.is_name("order") {
            self.advance()?;
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr_single()?;
                let descending = if self.eat_keyword("descending")? {
                    true
                } else {
                    let _ = self.eat_keyword("ascending")?;
                    false
                };
                // `empty greatest/least` accepted and ignored.
                if self.eat_keyword("empty")? {
                    let _ = self.eat_keyword("greatest")? || self.eat_keyword("least")?;
                }
                order_by.push(OrderKey { expr, descending });
                if !self.eat(&TokenKind::Comma)? {
                    break;
                }
            }
        }
        self.expect_keyword("return")?;
        let return_clause = Box::new(self.parse_expr_single()?);
        Ok(Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            return_clause,
        })
    }

    fn parse_quantified(&mut self) -> Result<Expr, QueryError> {
        let every = self.current.kind.is_name("every");
        self.advance()?;
        let mut bindings = Vec::new();
        loop {
            let var = self.expect_variable()?;
            self.skip_type_annotation()?;
            self.expect_keyword("in")?;
            let seq = self.parse_expr_single()?;
            bindings.push((var, seq));
            if !self.eat(&TokenKind::Comma)? {
                break;
            }
        }
        self.expect_keyword("satisfies")?;
        let satisfies = Box::new(self.parse_expr_single()?);
        Ok(Expr::Quantified {
            every,
            bindings,
            satisfies,
        })
    }

    fn parse_if(&mut self) -> Result<Expr, QueryError> {
        self.advance()?; // if
        self.expect(&TokenKind::LParen, "'('")?;
        let cond = Box::new(self.parse_expr()?);
        self.expect(&TokenKind::RParen, "')'")?;
        self.expect_keyword("then")?;
        let then_branch = Box::new(self.parse_expr_single()?);
        self.expect_keyword("else")?;
        let else_branch = Box::new(self.parse_expr_single()?);
        Ok(Expr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn parse_or(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_and()?;
        while self.current.kind.is_name("or") && !self.next_starts_operand_boundary()? {
            self.advance()?;
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_comparison()?;
        while self.current.kind.is_name("and") && !self.next_starts_operand_boundary()? {
            self.advance()?;
            let right = self.parse_comparison()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// Heuristic to keep `or`/`and` usable as element names in paths:
    /// those are parsed as steps elsewhere; in operator position the
    /// keyword is always an operator, so this returns false.
    fn next_starts_operand_boundary(&mut self) -> Result<bool, QueryError> {
        Ok(false)
    }

    fn parse_comparison(&mut self) -> Result<Expr, QueryError> {
        let left = self.parse_range()?;
        let op = match &self.current.kind {
            TokenKind::Eq => Some(CompOp::Eq),
            TokenKind::Ne => Some(CompOp::Ne),
            TokenKind::Lt => Some(CompOp::Lt),
            TokenKind::Le => Some(CompOp::Le),
            TokenKind::Gt => Some(CompOp::Gt),
            TokenKind::Ge => Some(CompOp::Ge),
            TokenKind::Name(n) => match n.as_str() {
                "eq" => Some(CompOp::ValEq),
                "ne" => Some(CompOp::ValNe),
                "lt" => Some(CompOp::ValLt),
                "le" => Some(CompOp::ValLe),
                "gt" => Some(CompOp::ValGt),
                "ge" => Some(CompOp::ValGe),
                "is" => Some(CompOp::Is),
                _ => None,
            },
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.advance()?;
                let right = self.parse_range()?;
                Ok(Expr::Comparison(op, Box::new(left), Box::new(right)))
            }
        }
    }

    fn parse_range(&mut self) -> Result<Expr, QueryError> {
        let left = self.parse_additive()?;
        if self.current.kind.is_name("to") {
            self.advance()?;
            let right = self.parse_additive()?;
            Ok(Expr::Range(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.current.kind {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance()?;
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match &self.current.kind {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Name(n) if n == "div" => ArithOp::Div,
                TokenKind::Name(n) if n == "idiv" => ArithOp::IDiv,
                TokenKind::Name(n) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.advance()?;
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, QueryError> {
        // `----1` recurses per sign without passing parse_expr_single,
        // so it carries its own depth guard.
        if self.eat(&TokenKind::Minus)? {
            self.enter_nested()?;
            let inner = self.parse_unary();
            self.leave_nested();
            return Ok(Expr::Neg(Box::new(inner?)));
        }
        if self.eat(&TokenKind::Plus)? {
            self.enter_nested()?;
            let inner = self.parse_unary();
            self.leave_nested();
            return inner;
        }
        self.parse_union()
    }

    fn parse_union(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_intersect_except()?;
        while self.current.kind == TokenKind::Pipe || self.current.kind.is_name("union") {
            self.advance()?;
            let right = self.parse_intersect_except()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_intersect_except(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_path()?;
        loop {
            if self.current.kind.is_name("intersect") {
                self.advance()?;
                let right = self.parse_path()?;
                left = Expr::Intersect(Box::new(left), Box::new(right));
            } else if self.current.kind.is_name("except") {
                self.advance()?;
                let right = self.parse_path()?;
                left = Expr::Except(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    // ----- paths -----

    fn parse_path(&mut self) -> Result<Expr, QueryError> {
        match self.current.kind {
            TokenKind::Slash => {
                self.advance()?;
                if self.starts_step() {
                    let root = Expr::RootPath(None);
                    self.parse_relative_path(root)
                } else {
                    Ok(Expr::RootPath(None))
                }
            }
            TokenKind::DoubleSlash => {
                self.advance()?;
                let root = Expr::RootPath(None);
                let dos = Expr::Step {
                    input: Some(Box::new(root)),
                    axis: Axis::Tree(TreeAxis::DescendantOrSelf),
                    test: NodeTest::any_node(),
                    predicates: Vec::new(),
                };
                self.parse_relative_path(dos)
            }
            _ => {
                let first = self.parse_step_expr(None)?;
                self.parse_relative_path_continue(first)
            }
        }
    }

    /// Does the current token begin a path step?
    fn starts_step(&self) -> bool {
        matches!(
            self.current.kind,
            TokenKind::Name(_)
                | TokenKind::Star
                | TokenKind::At
                | TokenKind::Dot
                | TokenKind::DotDot
                | TokenKind::Variable(_)
                | TokenKind::LParen
        )
    }

    fn parse_relative_path(&mut self, input: Expr) -> Result<Expr, QueryError> {
        let first = self.parse_step_expr(Some(input))?;
        self.parse_relative_path_continue(first)
    }

    fn parse_relative_path_continue(&mut self, mut left: Expr) -> Result<Expr, QueryError> {
        loop {
            match self.current.kind {
                TokenKind::Slash => {
                    self.advance()?;
                    left = self.parse_step_expr(Some(left))?;
                }
                TokenKind::DoubleSlash => {
                    self.advance()?;
                    let dos = Expr::Step {
                        input: Some(Box::new(left)),
                        axis: Axis::Tree(TreeAxis::DescendantOrSelf),
                        test: NodeTest::any_node(),
                        predicates: Vec::new(),
                    };
                    left = self.parse_step_expr(Some(dos))?;
                }
                _ => return Ok(left),
            }
        }
    }

    /// One step of a path: an axis step, or a postfix (primary +
    /// predicates) expression. `input` is the expression the step applies
    /// to (`None` → context item).
    fn parse_step_expr(&mut self, input: Option<Expr>) -> Result<Expr, QueryError> {
        // Abbreviations and axis steps.
        let cur = self.current.kind.clone();
        let step = match &cur {
            TokenKind::DotDot => {
                self.advance()?;
                Some((Axis::Tree(TreeAxis::Parent), NodeTest::any_node()))
            }
            TokenKind::At => {
                self.advance()?;
                let test = self.parse_node_test(true)?;
                Some((Axis::Tree(TreeAxis::Attribute), test))
            }
            TokenKind::Name(name) if *self.peek()? == TokenKind::ColonColon => {
                let axis =
                    Axis::parse(name).ok_or_else(|| self.err(format!("unknown axis '{name}'")))?;
                self.advance()?; // axis
                self.advance()?; // ::
                let is_attr = axis == Axis::Tree(TreeAxis::Attribute);
                let test = self.parse_node_test(is_attr)?;
                Some((axis, test))
            }
            TokenKind::Name(name) => {
                // Name test (child axis) — unless this is a function call
                // or kind test.
                if *self.peek()? == TokenKind::LParen {
                    if let Some(kind) = kind_test_of(name) {
                        let test = self.parse_kind_test(kind)?;
                        Some((Axis::Tree(TreeAxis::Child), test))
                    } else {
                        None // function call → postfix expression
                    }
                } else {
                    let test = NodeTest::named(name.clone());
                    self.advance()?;
                    Some((Axis::Tree(TreeAxis::Child), test))
                }
            }
            TokenKind::Star => {
                self.advance()?;
                Some((Axis::Tree(TreeAxis::Child), NodeTest::any_element()))
            }
            _ => None,
        };

        match step {
            Some((axis, test)) => {
                let predicates = self.parse_predicates()?;
                Ok(Expr::Step {
                    input: input.map(Box::new),
                    axis,
                    test,
                    predicates,
                })
            }
            None => {
                // Postfix expression: primary + predicates.
                let primary = self.parse_primary()?;
                let mut expr = primary;
                while self.current.kind == TokenKind::LBracket {
                    self.advance()?;
                    let predicate = self.parse_expr()?;
                    self.expect(&TokenKind::RBracket, "']'")?;
                    expr = Expr::Filter {
                        input: Box::new(expr),
                        predicate: Box::new(predicate),
                    };
                }
                match input {
                    None => Ok(expr),
                    Some(input) => Ok(Expr::PathExpr {
                        input: Box::new(input),
                        step: Box::new(expr),
                    }),
                }
            }
        }
    }

    fn parse_predicates(&mut self) -> Result<Vec<Expr>, QueryError> {
        let mut predicates = Vec::new();
        while self.eat(&TokenKind::LBracket)? {
            predicates.push(self.parse_expr()?);
            self.expect(&TokenKind::RBracket, "']'")?;
        }
        Ok(predicates)
    }

    fn parse_node_test(&mut self, attribute_axis: bool) -> Result<NodeTest, QueryError> {
        let cur = self.current.kind.clone();
        match &cur {
            TokenKind::Star => {
                self.advance()?;
                Ok(if attribute_axis {
                    NodeTest::any_node()
                } else {
                    NodeTest::any_element()
                })
            }
            TokenKind::Name(name) => {
                if *self.peek()? == TokenKind::LParen {
                    if let Some(kind) = kind_test_of(name) {
                        return self.parse_kind_test(kind);
                    }
                }
                let test = NodeTest::named(name.clone());
                self.advance()?;
                Ok(test)
            }
            other => Err(self.err(format!("expected a node test, found {other:?}"))),
        }
    }

    fn parse_kind_test(&mut self, kind: KindTest) -> Result<NodeTest, QueryError> {
        self.advance()?; // kind name
        self.expect(&TokenKind::LParen, "'('")?;
        // `element(name)` / `processing-instruction(target)`.
        let name = match &self.current.kind {
            TokenKind::Name(n) => {
                let n = n.clone();
                self.advance()?;
                Some(n)
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.advance()?;
                Some(s)
            }
            _ => None,
        };
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(NodeTest { kind, name })
    }

    // ----- primaries -----

    fn parse_primary(&mut self) -> Result<Expr, QueryError> {
        let cur = self.current.kind.clone();
        match &cur {
            TokenKind::Integer(i) => {
                let i = *i;
                self.advance()?;
                Ok(Expr::IntLit(i))
            }
            TokenKind::Double(d) => {
                let d = *d;
                self.advance()?;
                Ok(Expr::DoubleLit(d))
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.advance()?;
                Ok(Expr::StringLit(s))
            }
            TokenKind::Variable(v) => {
                let v = v.clone();
                self.advance()?;
                Ok(Expr::VarRef(v))
            }
            TokenKind::Dot => {
                self.advance()?;
                Ok(Expr::ContextItem)
            }
            TokenKind::LParen => {
                self.advance()?;
                if self.eat(&TokenKind::RParen)? {
                    return Ok(Expr::empty());
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Name(name) if *self.peek()? == TokenKind::LParen => {
                let name = name.clone();
                self.advance()?; // name
                self.advance()?; // (
                let mut args = Vec::new();
                if self.current.kind != TokenKind::RParen {
                    loop {
                        args.push(self.parse_expr_single()?);
                        if !self.eat(&TokenKind::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(Expr::FunctionCall { name, args })
            }
            TokenKind::Lt => {
                // Direct constructor: `<` directly followed by a name
                // start in the raw input.
                let lt_offset = self.current.offset;
                if self
                    .input
                    .as_bytes()
                    .get(lt_offset + 1)
                    .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
                {
                    self.parse_constructor_raw(lt_offset)
                } else {
                    Err(self.err("unexpected '<' (not a constructor)"))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    // ----- direct element constructors (raw mode) -----

    /// Parse a direct constructor starting at the `<` at `start`. On
    /// return, the token stream is repositioned after the constructor.
    fn parse_constructor_raw(&mut self, start: usize) -> Result<Expr, QueryError> {
        let mut pos = start;
        let elem = self.raw_element(&mut pos)?;
        // Re-sync the token stream after the constructor text.
        self.lexer.seek(pos);
        self.peeked = None;
        self.advance()?;
        Ok(Expr::Constructor(elem))
    }

    fn raw_err(&self, msg: impl Into<String>, pos: usize) -> QueryError {
        QueryError::parse(msg, self.input, pos)
    }

    fn raw_element(&mut self, pos: &mut usize) -> Result<ElementConstructor, QueryError> {
        // Nested direct constructors (`<a><a>…`) recurse here without
        // passing parse_expr_single — same stack-exhaustion guard.
        self.enter_nested()?;
        let result = self.raw_element_inner(pos);
        self.leave_nested();
        result
    }

    fn raw_element_inner(&mut self, pos: &mut usize) -> Result<ElementConstructor, QueryError> {
        let bytes = self.input.as_bytes();
        debug_assert_eq!(bytes.get(*pos), Some(&b'<'));
        *pos += 1;
        let name = self.raw_name(pos)?;
        let mut attributes = Vec::new();
        loop {
            self.raw_skip_ws(pos);
            match bytes.get(*pos) {
                Some(b'>') => {
                    *pos += 1;
                    break;
                }
                Some(b'/') if bytes.get(*pos + 1) == Some(&b'>') => {
                    *pos += 2;
                    return Ok(ElementConstructor {
                        name,
                        attributes,
                        content: Vec::new(),
                    });
                }
                Some(b) if b.is_ascii_alphabetic() || *b == b'_' => {
                    let attr_name = self.raw_name(pos)?;
                    self.raw_skip_ws(pos);
                    if bytes.get(*pos) != Some(&b'=') {
                        return Err(self.raw_err("expected '=' in attribute", *pos));
                    }
                    *pos += 1;
                    self.raw_skip_ws(pos);
                    let value = self.raw_attr_value(pos)?;
                    attributes.push((attr_name, value));
                }
                _ => return Err(self.raw_err(format!("malformed start tag <{name}>"), *pos)),
            }
        }
        // Element content until the matching end tag.
        let mut content = Vec::new();
        let mut text = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(self.raw_err(format!("<{name}> not closed"), *pos)),
                Some(b'<') => {
                    if bytes.get(*pos + 1) == Some(&b'/') {
                        flush_text(&mut text, &mut content);
                        *pos += 2;
                        let close = self.raw_name(pos)?;
                        if close != name {
                            return Err(self.raw_err(
                                format!("mismatched end tag </{close}>, expected </{name}>"),
                                *pos,
                            ));
                        }
                        self.raw_skip_ws(pos);
                        if bytes.get(*pos) != Some(&b'>') {
                            return Err(self.raw_err("expected '>'", *pos));
                        }
                        *pos += 1;
                        break;
                    } else if self.input[*pos..].starts_with("<!--") {
                        let end = self.input[*pos..]
                            .find("-->")
                            .ok_or_else(|| self.raw_err("unterminated comment", *pos))?;
                        *pos += end + 3;
                    } else if self.input[*pos..].starts_with("<![CDATA[") {
                        let end = self.input[*pos..]
                            .find("]]>")
                            .ok_or_else(|| self.raw_err("unterminated CDATA", *pos))?;
                        text.push_str(&self.input[*pos + 9..*pos + end]);
                        *pos += end + 3;
                    } else {
                        flush_text(&mut text, &mut content);
                        let child = self.raw_element(pos)?;
                        content.push(ConstructorContent::Element(Box::new(child)));
                    }
                }
                Some(b'{') => {
                    if bytes.get(*pos + 1) == Some(&b'{') {
                        text.push('{');
                        *pos += 2;
                    } else {
                        flush_text(&mut text, &mut content);
                        let expr = self.raw_enclosed_expr(pos)?;
                        content.push(ConstructorContent::Enclosed(expr));
                    }
                }
                Some(b'}') => {
                    if bytes.get(*pos + 1) == Some(&b'}') {
                        text.push('}');
                        *pos += 2;
                    } else {
                        return Err(self.raw_err("unescaped '}' in element content", *pos));
                    }
                }
                Some(b'&') => {
                    let rest = &self.input[*pos..];
                    let semi = rest
                        .find(';')
                        .ok_or_else(|| self.raw_err("unterminated entity", *pos))?;
                    text.push(decode_entity(&rest[1..semi]).ok_or_else(|| {
                        self.raw_err(format!("unknown entity &{};", &rest[1..semi]), *pos)
                    })?);
                    *pos += semi + 1;
                }
                Some(_) => {
                    let c = self.raw_char(*pos)?;
                    text.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
        flush_text(&mut text, &mut content);
        Ok(ElementConstructor {
            name,
            attributes,
            content,
        })
    }

    /// Attribute value: quoted string with `{expr}` interpolation.
    fn raw_attr_value(&mut self, pos: &mut usize) -> Result<Vec<ConstructorContent>, QueryError> {
        let bytes = self.input.as_bytes();
        let quote = match bytes.get(*pos) {
            Some(q @ (b'"' | b'\'')) => *q,
            _ => return Err(self.raw_err("attribute value must be quoted", *pos)),
        };
        *pos += 1;
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(self.raw_err("unterminated attribute value", *pos)),
                Some(b) if *b == quote => {
                    if bytes.get(*pos + 1) == Some(&quote) {
                        text.push(quote as char);
                        *pos += 2;
                    } else {
                        *pos += 1;
                        break;
                    }
                }
                Some(b'{') => {
                    if bytes.get(*pos + 1) == Some(&b'{') {
                        text.push('{');
                        *pos += 2;
                    } else {
                        flush_text(&mut text, &mut parts);
                        let expr = self.raw_enclosed_expr(pos)?;
                        parts.push(ConstructorContent::Enclosed(expr));
                    }
                }
                Some(b'}') if bytes.get(*pos + 1) == Some(&b'}') => {
                    text.push('}');
                    *pos += 2;
                }
                Some(b'&') => {
                    let rest = &self.input[*pos..];
                    let semi = rest
                        .find(';')
                        .ok_or_else(|| self.raw_err("unterminated entity", *pos))?;
                    text.push(decode_entity(&rest[1..semi]).ok_or_else(|| {
                        self.raw_err(format!("unknown entity &{};", &rest[1..semi]), *pos)
                    })?);
                    *pos += semi + 1;
                }
                Some(_) => {
                    let c = self.raw_char(*pos)?;
                    text.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
        if !text.is_empty() {
            parts.push(ConstructorContent::Text(text));
        }
        Ok(parts)
    }

    /// Decode the character at `pos`, erroring (instead of panicking)
    /// when `pos` is past the input or not a char boundary — truncated
    /// or garbage constructor text must surface as a parse error.
    fn raw_char(&self, pos: usize) -> Result<char, QueryError> {
        self.input
            .get(pos..)
            .and_then(|rest| rest.chars().next())
            .ok_or_else(|| self.raw_err("malformed constructor content", pos))
    }

    /// `{ expr }` inside a constructor: hop back into token mode.
    fn raw_enclosed_expr(&mut self, pos: &mut usize) -> Result<Expr, QueryError> {
        debug_assert_eq!(self.input.as_bytes().get(*pos), Some(&b'{'));
        self.lexer.seek(*pos + 1);
        self.peeked = None;
        self.advance()?;
        let expr = self.parse_expr()?;
        if self.current.kind != TokenKind::RBrace {
            return Err(self.err("expected '}' closing enclosed expression"));
        }
        // The lexer now sits right after `}`.
        *pos = self.lexer.offset();
        Ok(expr)
    }

    fn raw_skip_ws(&self, pos: &mut usize) {
        let bytes = self.input.as_bytes();
        while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            *pos += 1;
        }
    }

    fn raw_name(&self, pos: &mut usize) -> Result<String, QueryError> {
        let bytes = self.input.as_bytes();
        let start = *pos;
        if !bytes
            .get(*pos)
            .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
        {
            return Err(self.raw_err("expected a name", *pos));
        }
        *pos += 1;
        while bytes
            .get(*pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
        {
            *pos += 1;
        }
        Ok(self.input[start..*pos].to_string())
    }
}

/// Boundary whitespace handling: whitespace-only literal text between
/// constructor parts is dropped (XQuery's default `boundary-space strip`).
fn flush_text(text: &mut String, content: &mut Vec<ConstructorContent>) {
    if !text.is_empty() {
        if !text.chars().all(char::is_whitespace) {
            content.push(ConstructorContent::Text(std::mem::take(text)));
        } else {
            text.clear();
        }
    }
}

fn decode_entity(name: &str) -> Option<char> {
    Some(match name {
        "lt" => '<',
        "gt" => '>',
        "amp" => '&',
        "quot" => '"',
        "apos" => '\'',
        _ if name.starts_with("#x") || name.starts_with("#X") => {
            char::from_u32(u32::from_str_radix(&name[2..], 16).ok()?)?
        }
        _ if name.starts_with('#') => char::from_u32(name[1..].parse().ok()?)?,
        _ => return None,
    })
}

fn kind_test_of(name: &str) -> Option<KindTest> {
    Some(match name {
        "node" => KindTest::AnyKind,
        "text" => KindTest::Text,
        "comment" => KindTest::Comment,
        "processing-instruction" => KindTest::Pi,
        "element" => KindTest::Element,
        "document-node" => KindTest::Document,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Expr {
        parse_expr_str(s).unwrap()
    }

    #[test]
    fn literals_and_sequences() {
        assert!(matches!(parse("42"), Expr::IntLit(42)));
        assert!(matches!(parse("()"), Expr::Sequence(v) if v.is_empty()));
        assert!(matches!(parse("(1, 2, 3)"), Expr::Sequence(v) if v.len() == 3));
        assert!(matches!(parse(r#""hi""#), Expr::StringLit(s) if s == "hi"));
    }

    #[test]
    fn path_with_standoff_axis() {
        let e = parse("//music/select-narrow::shot");
        let Expr::Step { axis, test, .. } = &e else {
            panic!("expected step, got {e:?}");
        };
        assert_eq!(
            *axis,
            Axis::Standoff(standoff_core::StandoffAxis::SelectNarrow)
        );
        assert_eq!(test.name.as_deref(), Some("shot"));
    }

    #[test]
    fn abbreviated_attribute_step() {
        let e = parse("$b/@id");
        let Expr::Step {
            axis, test, input, ..
        } = &e
        else {
            panic!("{e:?}")
        };
        assert_eq!(*axis, Axis::Tree(TreeAxis::Attribute));
        assert_eq!(test.name.as_deref(), Some("id"));
        assert!(matches!(input.as_deref(), Some(Expr::VarRef(v)) if v == "b"));
    }

    #[test]
    fn predicates_parse() {
        let e = parse("//person[@id = \"person0\"]/name");
        let Expr::Step { input, .. } = &e else {
            panic!("{e:?}")
        };
        let Some(Expr::Step { predicates, .. }) = input.as_deref() else {
            panic!("{input:?}")
        };
        assert_eq!(predicates.len(), 1);
    }

    #[test]
    fn positional_predicate() {
        let e = parse("$b/bidder[1]");
        let Expr::Step { predicates, .. } = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(predicates[0], Expr::IntLit(1)));
    }

    #[test]
    fn flwor_paper_figure5() {
        // StandOff XMark Query 2 from Figure 5 of the paper.
        let q = parse_query(
            r#"for $b in doc("xmark110MB.xml")
                 //site/select-narrow::open_auctions
                 /select-narrow::open_auction
               return <increase> {
                 $b/select-narrow::bidder[1]/select-narrow::increase
               } </increase>"#,
        )
        .unwrap();
        let Expr::Flwor {
            clauses,
            return_clause,
            ..
        } = &q.body
        else {
            panic!("{:?}", q.body)
        };
        assert_eq!(clauses.len(), 1);
        assert!(matches!(return_clause.as_ref(), Expr::Constructor(_)));
    }

    #[test]
    fn figure2_udf_module() {
        // The paper's Figure 2 text (module decl + function).
        let q = parse_query(
            r#"declare module standoff = "http://w3c.org/tr/standoff/"
               declare function select-narrow($input as xs:anyNode*)
                 as xs:anyNode*
               {
                 (for $q in $input
                  for $p in root($q)//*
                  where $p/@start >= $q/@start
                    and $p/@end <= $q/@end
                  return $p)/.
               }
               select-narrow(//music)/self::shot"#,
        )
        .unwrap();
        assert_eq!(q.prolog.namespaces.len(), 1);
        assert_eq!(q.prolog.functions.len(), 1);
        assert_eq!(q.prolog.functions[0].params, vec!["input"]);
    }

    #[test]
    fn declare_option_standoff() {
        let q = parse_query(
            r#"declare option standoff-start "from";
               declare option standoff-end "to";
               1"#,
        )
        .unwrap();
        assert_eq!(
            q.prolog.options,
            vec![
                ("standoff-start".to_string(), "from".to_string()),
                ("standoff-end".to_string(), "to".to_string())
            ]
        );
    }

    #[test]
    fn constructor_with_enclosed_exprs() {
        let e = parse(r#"<result count="{1 + 2}">text {3 * 4} more</result>"#);
        let Expr::Constructor(c) = &e else {
            panic!("{e:?}")
        };
        assert_eq!(c.name, "result");
        assert_eq!(c.attributes.len(), 1);
        assert_eq!(c.content.len(), 3);
        assert!(matches!(&c.content[0], ConstructorContent::Text(t) if t == "text "));
        assert!(matches!(&c.content[1], ConstructorContent::Enclosed(_)));
    }

    #[test]
    fn nested_constructors() {
        let e = parse("<a><b>{ 1 }</b><c/></a>");
        let Expr::Constructor(c) = &e else {
            panic!("{e:?}")
        };
        assert_eq!(c.content.len(), 2);
    }

    #[test]
    fn constructor_brace_escapes() {
        let e = parse("<a>{{literal}}</a>");
        let Expr::Constructor(c) = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(&c.content[0], ConstructorContent::Text(t) if t == "{literal}"));
    }

    #[test]
    fn comparison_vs_constructor_disambiguation() {
        // `$a < $b` is a comparison; `<b/>` is a constructor.
        assert!(matches!(
            parse("$a < $b"),
            Expr::Comparison(CompOp::Lt, _, _)
        ));
        assert!(matches!(parse("<b/>"), Expr::Constructor(_)));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse("1 + 2 * 3");
        let Expr::Arith(ArithOp::Add, _, rhs) = &e else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.as_ref(), Expr::Arith(ArithOp::Mul, _, _)));
    }

    #[test]
    fn if_and_quantified() {
        assert!(matches!(
            parse("if (1) then 2 else 3"),
            Expr::IfThenElse { .. }
        ));
        assert!(matches!(
            parse("some $x in (1,2) satisfies $x = 2"),
            Expr::Quantified { every: false, .. }
        ));
        assert!(matches!(
            parse("every $x in (1,2) satisfies $x > 0"),
            Expr::Quantified { every: true, .. }
        ));
    }

    #[test]
    fn keywords_usable_as_element_names() {
        // `for`, `if`, `return` are legal name tests when not followed by
        // their grammatical continuations.
        let e = parse("/for/if/return");
        assert!(matches!(e, Expr::Step { .. }));
    }

    #[test]
    fn double_slash_desugars() {
        let e = parse("//a");
        let Expr::Step { input, .. } = &e else {
            panic!("{e:?}")
        };
        let Some(Expr::Step { axis, .. }) = input.as_deref() else {
            panic!("{input:?}")
        };
        assert_eq!(*axis, Axis::Tree(TreeAxis::DescendantOrSelf));
    }

    #[test]
    fn union_expression() {
        assert!(matches!(parse("a | b"), Expr::Union(_, _)));
    }

    #[test]
    fn range_expression() {
        assert!(matches!(parse("1 to 10"), Expr::Range(_, _)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_expr_str("1 1").is_err());
    }

    #[test]
    fn error_positions() {
        let e = parse_expr_str("1 +\n  ]").unwrap_err();
        let QueryError::Parse { line, .. } = e else {
            panic!("{e:?}")
        };
        assert_eq!(line, 2);
    }

    #[test]
    fn value_comparisons() {
        assert!(matches!(
            parse("1 eq 2"),
            Expr::Comparison(CompOp::ValEq, _, _)
        ));
        assert!(matches!(
            parse("$a is $b"),
            Expr::Comparison(CompOp::Is, _, _)
        ));
    }

    #[test]
    fn order_by_clause() {
        let e = parse("for $x in (3,1,2) order by $x descending return $x");
        let Expr::Flwor { order_by, .. } = &e else {
            panic!("{e:?}")
        };
        assert_eq!(order_by.len(), 1);
        assert!(order_by[0].descending);
    }

    #[test]
    fn let_clause_and_multiple_bindings() {
        let e = parse("for $x in (1,2), $y in (3,4) let $z := ($x, $y) return $z");
        let Expr::Flwor { clauses, .. } = &e else {
            panic!("{e:?}")
        };
        assert_eq!(clauses.len(), 3);
    }

    #[test]
    fn kind_tests() {
        let e = parse("a/text()");
        let Expr::Step { test, .. } = &e else {
            panic!("{e:?}")
        };
        assert_eq!(test.kind, KindTest::Text);
        let e = parse("a/node()");
        let Expr::Step { test, .. } = &e else {
            panic!("{e:?}")
        };
        assert_eq!(test.kind, KindTest::AnyKind);
    }

    #[test]
    fn filter_on_parenthesized_expr() {
        let e = parse("(1, 2, 3)[2]");
        assert!(matches!(e, Expr::Filter { .. }));
    }
}
