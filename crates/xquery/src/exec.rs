//! Concurrent batch query execution.
//!
//! The paper's premise is that StandOff axes make annotation queries
//! cheap enough to run at corpus scale; this module supplies the
//! service-shaped half of that claim: an [`Executor`] that takes a batch
//! of query strings, fans them out over a configurable number of worker
//! threads — each with its own [`Session`] over one shared, immutable
//! [`SharedEngine`] corpus — and returns the results in submission
//! order.
//!
//! Robustness guarantees, in service of "a worker must never take down
//! the pool":
//!
//! * every query string, however malformed, produces a `Result` — the
//!   lexer/parser/compiler/evaluator return [`QueryError`]s rather than
//!   panic;
//! * should a defect slip through anyway, the panic is caught per
//!   query, surfaced as [`QueryError::Internal`], and the worker's
//!   session is rebuilt before the next query;
//! * results are deterministic: the output vector is indexed by
//!   submission order regardless of which worker ran which query, and
//!   evaluation over the shared corpus is by-value identical across
//!   thread counts.
//!
//! Compiled plans are memoized in a small LRU [`QueryCache`] keyed on
//! `(query text, store generation, options fingerprint)`, so repeated
//! queries — the common shape of an annotation-service workload — skip
//! the parser *and* the compiler/optimizer entirely. The options
//! fingerprint matters: strategy and candidate pushdown are baked into
//! the plan at compile time, so a plan compiled under one option set
//! must never serve an engine running another (see
//! [`crate::engine::EngineOptions::fingerprint`]).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use standoff_core::obs::{Counter, MetricsSnapshot};
use standoff_core::{Budget, BudgetLimits};

use crate::engine::{Session, SharedEngine};
use crate::error::QueryError;
use crate::plan::Plan;
use crate::profile::QueryProfile;
use crate::result::QueryResult;

/// Default capacity of an executor's compiled-plan cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// An LRU cache of compiled plans, keyed on `(query text, store
/// generation, options fingerprint)`.
///
/// The generation key makes entries self-invalidating against corpus
/// changes: an executor rebuilt over a re-mounted corpus draws fresh
/// generation stamps, so a cache shared across executors can never
/// serve a stale plan for a different corpus. The options fingerprint
/// does the same for evaluation options — two [`SharedEngine`]s over
/// the *same* corpus (same generation, e.g. via
/// [`SharedEngine::with_options`]) but different strategy/pushdown
/// settings hit disjoint entries, because those settings are compiled
/// into the plan. Shared behind [`Arc`] by all workers of an executor;
/// hit/miss counters are exposed for `--time` style reporting.
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time view of a [`QueryCache`]'s counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to make room (LRU); does not count entries
    /// *replaced* by a recompile of the same key.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Maximum number of cached plans.
    pub capacity: usize,
}

/// Everything but the query text of a cache key.
type EpochKey = (u64, u64); // (store generation, options fingerprint)

struct CacheInner {
    /// Epoch → (query text → entry). Nested so the hot hit path probes
    /// with a borrowed `&str` — no per-lookup allocation; the query
    /// text is copied only when an entry is inserted.
    epochs: HashMap<EpochKey, HashMap<String, CacheEntry>>,
    /// Total entries across all epochs.
    len: usize,
    /// Logical clock for LRU eviction.
    tick: u64,
}

struct CacheEntry {
    plan: Arc<Plan>,
    last_used: u64,
}

impl QueryCache {
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                epochs: HashMap::new(),
                len: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The compiled plan of `text` for `engine`'s corpus and options,
    /// compiling (and caching) on miss. Parse and compile errors are
    /// not cached — hostile inputs must not evict useful entries.
    pub fn get_or_compile(
        &self,
        text: &str,
        engine: &SharedEngine,
    ) -> Result<Arc<Plan>, QueryError> {
        let epoch: EpochKey = (engine.generation(), engine.options().fingerprint());
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.epochs.get_mut(&epoch).and_then(|m| m.get_mut(text)) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.plan));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside the lock: a slow compile of one query must not
        // stall every other worker's cache lookups. Concurrent misses on
        // the same text compile twice and the last insert wins — benign.
        let plan = Arc::new(guard_panic(|| engine.compile(text), "query compiler")??);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let replacing = inner
            .epochs
            .get(&epoch)
            .is_some_and(|m| m.contains_key(text));
        if !replacing && inner.len >= self.capacity {
            inner.evict_lru();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let entry = CacheEntry {
            plan: Arc::clone(&plan),
            last_used: tick,
        };
        inner
            .epochs
            .entry(epoch)
            .or_default()
            .insert(text.to_string(), entry);
        if !replacing {
            inner.len += 1;
        }
        Ok(plan)
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted (LRU) since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// All counters and occupancy in one consistent-enough view (the
    /// counters are independently atomic; exactness across a racing
    /// insert is not promised, monotonicity is).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CacheInner {
    /// Drop the least-recently-used entry. O(n) scan — capacity is
    /// small and this runs only on insertions past capacity.
    fn evict_lru(&mut self) {
        let oldest = self
            .epochs
            .iter()
            .flat_map(|(&epoch, entries)| {
                entries
                    .iter()
                    .map(move |(text, entry)| (entry.last_used, epoch, text))
            })
            .min_by_key(|&(last_used, _, _)| last_used)
            .map(|(_, epoch, text)| (epoch, text.clone()));
        if let Some((epoch, text)) = oldest {
            if let Some(entries) = self.epochs.get_mut(&epoch) {
                entries.remove(&text);
                if entries.is_empty() {
                    self.epochs.remove(&epoch);
                }
            }
            self.len -= 1;
        }
    }
}

/// Resource-governance policy for an [`Executor`]: what each admitted
/// request may consume, and how many requests may be in flight at once.
/// The default is fully ungoverned — every field open — so existing
/// batch users see no behavior change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Governance {
    /// Maximum concurrently admitted requests. A request arriving with
    /// the queue full is *shed* with [`QueryError::Overloaded`] —
    /// explicit backpressure, never silent blocking.
    pub queue_cap: Option<usize>,
    /// Per-request wall-clock deadline, anchored at admission.
    pub deadline: Option<Duration>,
    /// Per-request cap on cumulative operator output cardinality.
    pub max_results: Option<u64>,
    /// Per-request cap on the join-scratch high-water mark, in bytes.
    pub max_scratch_bytes: Option<u64>,
}

impl Governance {
    /// The per-request budget caps (admission control excluded).
    fn limits(&self) -> BudgetLimits {
        BudgetLimits {
            deadline: self.deadline,
            max_results: self.max_results,
            max_scratch_bytes: self.max_scratch_bytes,
        }
    }

    /// A fresh budget enforcing this policy's per-request caps, with
    /// the deadline clock starting now. `None` when no cap is set —
    /// hosts that still need a cancel handle (a draining server) pass
    /// their own [`Budget::cancel_token`] instead.
    pub fn fresh_budget(&self) -> Option<Budget> {
        let limits = self.limits();
        if limits.is_unlimited() {
            None
        } else {
            Some(Budget::new(limits))
        }
    }
}

/// Pre-registered governance counters (see [`Executor::governed`]).
struct GovHandles {
    /// Requests shed at admission (`executor.sheds`).
    sheds: Counter,
    /// Governed requests that ended in [`QueryError::Timeout`]
    /// (`executor.timeouts`).
    timeouts: Counter,
    /// High-water mark of concurrently admitted requests
    /// (`executor.queue_depth_hwm`).
    queue_depth_hwm: Counter,
}

/// A concurrent batch query executor over a [`SharedEngine`].
///
/// ```
/// use standoff_xquery::{Engine, Executor};
/// let mut engine = Engine::new();
/// engine.load_document("d.xml", "<a><b/><b/></a>").unwrap();
/// let exec = Executor::new(engine.into_shared(), 4);
/// let results = exec.run_batch(&[r#"count(doc("d.xml")//b)"#, "1 + 1"]);
/// assert_eq!(results[0].as_ref().unwrap().as_strings(), ["2"]);
/// assert_eq!(results[1].as_ref().unwrap().as_strings(), ["2"]);
/// ```
///
/// With [`Executor::governed`] the same executor also serves the
/// request-at-a-time path ([`Executor::run_governed`]): admission
/// control with shed-on-full, a per-request [`Budget`] (deadline,
/// result and scratch caps), and `executor.*` governance counters.
pub struct Executor {
    engine: SharedEngine,
    threads: usize,
    cache: Arc<QueryCache>,
    governance: Governance,
    /// Requests currently admitted (the "queue depth" of the bounded
    /// submission queue; admission is all-or-nothing, so depth counts
    /// running requests).
    active: AtomicUsize,
    gov: GovHandles,
}

impl Executor {
    /// An executor with `threads` workers (clamped to ≥ 1) and a
    /// private plan cache of [`DEFAULT_CACHE_CAPACITY`].
    pub fn new(engine: SharedEngine, threads: usize) -> Executor {
        Self::with_cache(
            engine,
            threads,
            Arc::new(QueryCache::new(DEFAULT_CACHE_CAPACITY)),
        )
    }

    /// An executor sharing an existing plan cache (e.g. across executors
    /// serving different thread counts — or different evaluation
    /// options — over the same corpus).
    pub fn with_cache(engine: SharedEngine, threads: usize, cache: Arc<QueryCache>) -> Executor {
        Self::governed_with_cache(engine, threads, Governance::default(), cache)
    }

    /// An executor enforcing `governance` on every request (batch
    /// queries get per-query budgets; [`Executor::run_governed`] adds
    /// admission control), with a private plan cache.
    pub fn governed(engine: SharedEngine, threads: usize, governance: Governance) -> Executor {
        Self::governed_with_cache(
            engine,
            threads,
            governance,
            Arc::new(QueryCache::new(DEFAULT_CACHE_CAPACITY)),
        )
    }

    /// [`Executor::governed`] sharing an existing plan cache — the
    /// serve path's constructor: mounts swap executors, plans survive.
    pub fn governed_with_cache(
        engine: SharedEngine,
        threads: usize,
        governance: Governance,
        cache: Arc<QueryCache>,
    ) -> Executor {
        let registry = engine.metrics();
        let gov = GovHandles {
            sheds: registry.counter("executor.sheds"),
            timeouts: registry.counter("executor.timeouts"),
            queue_depth_hwm: registry.counter("executor.queue_depth_hwm"),
        };
        Executor {
            engine,
            threads: threads.max(1),
            cache,
            governance,
            active: AtomicUsize::new(0),
            gov,
        }
    }

    /// The shared corpus this executor evaluates against.
    pub fn engine(&self) -> &SharedEngine {
        &self.engine
    }

    /// Number of worker threads a batch fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The compiled-plan cache (hit/miss counters included).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The governance policy requests run under.
    pub fn governance(&self) -> &Governance {
        &self.governance
    }

    /// Requests currently admitted via [`Executor::run_governed`].
    pub fn queue_depth(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Evaluate a batch of queries, returning one result per query **in
    /// submission order**, regardless of which worker evaluated what.
    ///
    /// Queries are pulled from a shared counter, so long queries do not
    /// convoy short ones behind a static partition. With one thread the
    /// batch runs inline on the caller's thread.
    pub fn run_batch<S: AsRef<str> + Sync>(
        &self,
        queries: &[S],
    ) -> Vec<Result<QueryResult, QueryError>> {
        match guard_panic(
            || {
                self.run_batch_impl(queries, false, |exec, session, text| {
                    exec.run_one(session, text)
                })
            },
            "batch worker pool",
        ) {
            Ok(results) => results,
            // Pool machinery died (per-query panics are already caught
            // inside run_one): fail the whole batch explicitly rather
            // than return anything incomplete.
            Err(e) => queries.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// [`Executor::run_batch`] with per-operator profiling: every
    /// successful query also returns its [`QueryProfile`]. Scheduling,
    /// ordering and robustness guarantees are identical; the workers'
    /// sessions simply run with profiling on.
    pub fn run_batch_profiled<S: AsRef<str> + Sync>(
        &self,
        queries: &[S],
    ) -> Vec<Result<(QueryResult, QueryProfile), QueryError>> {
        match guard_panic(
            || {
                self.run_batch_impl(queries, true, |exec, session, text| {
                    exec.run_one_profiled(session, text)
                })
            },
            "batch worker pool",
        ) {
            Ok(results) => results,
            Err(e) => queries.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// The shared batch driver: fan `queries` out over the workers via
    /// [`standoff_core::par::scatter`] — the same pull-based,
    /// order-preserving pool the join morsel kernels use — recording
    /// queue metrics (`executor.*`) into the engine registry per pick.
    /// Returns one result per query in submission order: a panicked
    /// pool worker re-raises on this thread (the callers above convert
    /// it), so an incomplete result vector can never be observed. Under
    /// a governing policy every query runs with its own fresh budget.
    fn run_batch_impl<S, T, F>(&self, queries: &[S], profile: bool, run_fn: F) -> Vec<T>
    where
        S: AsRef<str> + Sync,
        T: Send,
        F: Fn(&Executor, &mut Session, &str) -> T + Sync,
    {
        if queries.is_empty() {
            return Vec::new();
        }
        let registry = self.engine.metrics();
        registry.counter("executor.batches").inc();
        let queries_ctr = registry.counter("executor.queries");
        let queue_wait = registry.histogram("executor.queue_wait_ns");
        let queue_depth = registry.histogram("executor.queue_depth");
        let started = Instant::now();
        // Per-pick bookkeeping, identical inline and threaded: wait is
        // how long the query sat in the queue before a worker picked it
        // up, depth is how many queries were still waiting.
        let picked = |k: usize| {
            queries_ctr.inc();
            queue_wait.record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            queue_depth.record((queries.len() - k - 1) as u64);
        };
        standoff_core::par::scatter(
            queries.len(),
            self.threads,
            || {
                let mut session = self.engine.session();
                session.set_profile(profile);
                session
            },
            |session, k| {
                picked(k);
                // Per-query budget under governance: the deadline clock
                // starts when a worker picks the query up, mirroring the
                // admission-anchored clock of the serve path.
                session.set_budget(self.governance.fresh_budget());
                run_fn(self, session, queries[k].as_ref())
            },
        )
    }

    /// Evaluate one request under this executor's [`Governance`]: admit
    /// it against the bounded queue (shedding with
    /// [`QueryError::Overloaded`] when full), run it with a fresh
    /// per-request budget, and record shed/timeout/depth counters.
    pub fn run_governed(&self, text: &str) -> Result<QueryResult, QueryError> {
        self.run_governed_with(text, self.governance.fresh_budget())
    }

    /// [`Executor::run_governed`] with a caller-supplied budget — the
    /// serve path passes one it keeps a clone of, so it can
    /// [`Budget::cancel`] in-flight requests on drain or client
    /// disconnect. `None` runs ungoverned (admission still applies).
    pub fn run_governed_with(
        &self,
        text: &str,
        budget: Option<Budget>,
    ) -> Result<QueryResult, QueryError> {
        let _permit = self.admit()?;
        let mut session = self.engine.session();
        session.set_budget(budget);
        self.run_one(&mut session, text)
    }

    /// Reserve an admission slot, shedding on a full queue. The permit
    /// releases the slot on drop — error paths included.
    fn admit(&self) -> Result<AdmissionPermit<'_>, QueryError> {
        let cap = self.governance.queue_cap.unwrap_or(usize::MAX);
        let depth = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        if depth > cap {
            self.active.fetch_sub(1, Ordering::AcqRel);
            self.gov.sheds.inc();
            return Err(QueryError::Overloaded(format!(
                "admission queue full ({cap} request(s) in flight); retry later"
            )));
        }
        self.gov.queue_depth_hwm.record_max(depth as u64);
        Ok(AdmissionPermit { exec: self })
    }

    /// The engine registry's snapshot with this executor's plan-cache
    /// counters (`plan_cache.hits/misses/evictions`) injected — the
    /// cache belongs to the executor, not the engine, so the registry
    /// alone cannot see it.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.engine.metrics().snapshot();
        let stats = self.cache.stats();
        snapshot
            .counters
            .insert("plan_cache.hits".to_string(), stats.hits);
        snapshot
            .counters
            .insert("plan_cache.misses".to_string(), stats.misses);
        snapshot
            .counters
            .insert("plan_cache.evictions".to_string(), stats.evictions);
        snapshot
    }

    /// Evaluate one query in an existing session, converting any panic
    /// into [`QueryError::Internal`] and leaving the session clean.
    fn run_one(&self, session: &mut Session, text: &str) -> Result<QueryResult, QueryError> {
        // Chaos hook, post-admission: a Delay here holds the request's
        // queue slot open so tests can race sheds, unmounts and drains
        // into the window deterministically.
        standoff_core::fault::point("executor.query");
        let plan = self.cache.get_or_compile(text, &self.engine)?;
        let outcome = guard_panic(|| session.execute_plan(&plan), "query evaluation");
        let result = match outcome {
            Ok(result) => {
                session.reset();
                result
            }
            Err(e) => {
                // The session may hold arbitrary partial state after an
                // unwind; rebuild it from the shared corpus.
                *session = self.engine.session();
                Err(e)
            }
        };
        if matches!(result, Err(QueryError::Timeout)) {
            self.gov.timeouts.inc();
        }
        result
    }

    /// [`Executor::run_one`] with the session's recorded profile
    /// attached to the result. The session is assumed to have profiling
    /// enabled (the batch driver did it); a rebuilt-after-panic session
    /// re-enables it.
    fn run_one_profiled(
        &self,
        session: &mut Session,
        text: &str,
    ) -> Result<(QueryResult, QueryProfile), QueryError> {
        let plan = self.cache.get_or_compile(text, &self.engine)?;
        let outcome = guard_panic(|| session.execute_plan(&plan), "query evaluation");
        let result = match outcome {
            Ok(result) => {
                let ops = session.take_last_profile().unwrap_or_default();
                session.reset();
                result.map(|r| (r, QueryProfile { plan, ops }))
            }
            Err(e) => {
                *session = self.engine.session();
                session.set_profile(true);
                Err(e)
            }
        };
        if matches!(result, Err(QueryError::Timeout)) {
            self.gov.timeouts.inc();
        }
        result
    }
}

/// An admitted request's slot in the bounded submission queue; dropping
/// it (normally or during unwind) frees the slot.
struct AdmissionPermit<'a> {
    exec: &'a Executor,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.exec.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Run `f`, converting a panic into a [`QueryError::Internal`] carrying
/// the panic payload when it is a string.
///
/// The *process* survives and the batch completes, but the default
/// panic hook still prints the panic message and backtrace to stderr
/// before the unwind reaches us. That noise is left in place on
/// purpose: it is the only trace of the underlying engine defect, and
/// suppressing it would require `std::panic::set_hook` — a
/// process-global side effect a library must not impose on its host.
fn guard_panic<T>(f: impl FnOnce() -> T, what: &str) -> Result<T, QueryError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        QueryError::internal(format!("panic in {what}: {msg}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions};
    use crate::plan::PlanExpr;
    use standoff_core::StandoffStrategy;

    fn fixture() -> SharedEngine {
        let mut engine = Engine::new();
        engine
            .load_document(
                "d.xml",
                r#"<a><w start="0" end="9"/><w start="3" end="5"/><w start="12" end="14"/></a>"#,
            )
            .unwrap();
        engine.into_shared()
    }

    #[test]
    fn batch_results_in_submission_order() {
        let exec = Executor::new(fixture(), 3);
        let queries: Vec<String> = (1..=20).map(|k| format!("{k} * 2")).collect();
        let results = exec.run_batch(&queries);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(
                r.as_ref().unwrap().as_strings(),
                [((k + 1) * 2).to_string()]
            );
        }
    }

    #[test]
    fn errors_are_per_query() {
        let exec = Executor::new(fixture(), 2);
        let results = exec.run_batch(&["1 + 1", "1 +", r#"count(doc("missing")//x)"#]);
        assert_eq!(results[0].as_ref().unwrap().as_strings(), ["2"]);
        assert!(results[1].is_err());
        assert!(results[2].is_err());
    }

    #[test]
    fn cache_hits_on_repeats() {
        let exec = Executor::new(fixture(), 1);
        let batch = vec!["count(doc(\"d.xml\")//w)"; 10];
        let results = exec.run_batch(&batch);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(exec.cache().misses(), 1);
        assert_eq!(exec.cache().hits(), 9);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let shared = fixture();
        let cache = QueryCache::new(2);
        cache.get_or_compile("1", &shared).unwrap();
        cache.get_or_compile("2", &shared).unwrap();
        cache.get_or_compile("1", &shared).unwrap(); // refresh "1"
        cache.get_or_compile("3", &shared).unwrap(); // evicts "2"
        assert_eq!(cache.len(), 2);
        cache.get_or_compile("1", &shared).unwrap();
        assert_eq!(cache.misses(), 3); // "1", "2", "3"
        cache.get_or_compile("2", &shared).unwrap();
        assert_eq!(cache.misses(), 4); // "2" was evicted, re-compiled
    }

    #[test]
    fn cache_distinguishes_generations() {
        // Two engines over different corpora carry different generation
        // stamps; a shared cache must never cross them.
        let cache = QueryCache::new(8);
        let a = fixture();
        let b = fixture();
        assert_ne!(a.generation(), b.generation());
        cache.get_or_compile("1 + 1", &a).unwrap();
        cache.get_or_compile("1 + 1", &b).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    /// Regression: cache keys used to ignore [`EngineOptions`], so
    /// toggling strategy or pushdown after warming the cache reused a
    /// plan compiled under the old settings. With strategy/pushdown now
    /// *baked into* plans, the key carries the options fingerprint.
    #[test]
    fn cache_distinguishes_options_over_same_corpus() {
        let cache = Arc::new(QueryCache::new(8));
        let shared = fixture();
        // Same corpus — identical generation — different options.
        let naive = shared.with_options(EngineOptions {
            strategy: StandoffStrategy::NaiveNoCandidates,
            ..EngineOptions::default()
        });
        assert_eq!(shared.generation(), naive.generation());

        let query = r#"doc("d.xml")//w[@start = 0]/select-narrow::w"#;
        let plan_ll = cache.get_or_compile(query, &shared).unwrap();
        let plan_naive = cache.get_or_compile(query, &naive).unwrap();
        assert_eq!(cache.misses(), 2, "same text, different options: no reuse");

        // The cached plans really were compiled under their own options.
        let strategy_of = |plan: &Plan| {
            let mut found = None;
            plan.visit_exprs(&mut |e| {
                if let PlanExpr::StandoffStep { op, .. } = e {
                    found = Some(op.strategy);
                }
            });
            found.expect("query has a standoff step")
        };
        assert_eq!(strategy_of(&plan_ll), StandoffStrategy::LoopLiftedMergeJoin);
        assert_eq!(
            strategy_of(&plan_naive),
            StandoffStrategy::NaiveNoCandidates
        );

        // And repeat lookups hit their own entry.
        cache.get_or_compile(query, &shared).unwrap();
        cache.get_or_compile(query, &naive).unwrap();
        assert_eq!(cache.hits(), 2);

        // Executors sharing the cache under either option set agree on
        // results (strategies are semantically equivalent).
        let r1 = Executor::with_cache(shared, 1, Arc::clone(&cache)).run_batch(&[query]);
        let r2 = Executor::with_cache(naive, 1, Arc::clone(&cache)).run_batch(&[query]);
        assert_eq!(
            r1[0].as_ref().unwrap().as_xml(),
            r2[0].as_ref().unwrap().as_xml()
        );
    }

    /// Regression (writable overlays): applying a delta through
    /// [`crate::WritableEngine`] swaps in a fresh store generation, so a
    /// shared [`QueryCache`] must treat the post-mutation engine as a
    /// new epoch — replaying a plan compiled against the pre-mutation
    /// corpus would silently serve stale candidate estimates and stats.
    #[test]
    fn cache_invalidates_on_writable_mutation() {
        use crate::WritableEngine;
        use standoff_core::StandoffConfig;
        use standoff_store::{DeltaOp, LayerSet};
        use standoff_xml::parse_document;

        let base = parse_document("<text>hello stand-off world</text>").unwrap();
        let mut set = LayerSet::build("mem://w", base, StandoffConfig::default()).unwrap();
        let tokens = parse_document(
            r#"<tokens><w start="0" end="4"/><w start="6" end="14"/><w start="16" end="20"/></tokens>"#,
        )
        .unwrap();
        set.add_layer("tokens", tokens, StandoffConfig::default())
            .unwrap();
        let mut writable = WritableEngine::mount(set, EngineOptions::default()).unwrap();

        let cache = Arc::new(QueryCache::new(8));
        let query = r#"count(layer("mem://w", "tokens")//w)"#;

        let before = Executor::with_cache(writable.shared(), 1, Arc::clone(&cache));
        let r = before.run_batch(&[query, query]);
        assert_eq!(r[0].as_ref().unwrap().as_xml(), "3");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));

        writable
            .apply([DeltaOp::Insert {
                layer: "tokens".into(),
                name: "w".into(),
                start: 5,
                end: 5,
                attrs: vec![],
            }])
            .unwrap();

        // Same query text, same cache — but the mutated engine carries a
        // new generation, so this is a fresh compile, not a stale hit,
        // and the result reflects the insert.
        let after = Executor::with_cache(writable.shared(), 1, Arc::clone(&cache));
        let r = after.run_batch(&[query]);
        assert_eq!(r[0].as_ref().unwrap().as_xml(), "4");
        assert_eq!(
            (cache.misses(), cache.hits()),
            (2, 1),
            "post-mutation lookup must miss the pre-mutation entry"
        );
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = QueryCache::new(8);
        let shared = fixture();
        assert!(cache.get_or_compile("1 +", &shared).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn thread_counts_agree_bytewise() {
        let shared = fixture();
        let queries: Vec<String> = (0..60)
            .map(|k| match k % 4 {
                0 => r#"doc("d.xml")//w[@start = 0]/select-narrow::w"#.to_string(),
                1 => r#"<hit n="{count(doc("d.xml")//w)}"/>"#.to_string(),
                2 => format!("{k} + {k}"),
                _ => r#"for $w in doc("d.xml")//w order by $w/@start descending return $w/@end"#
                    .to_string(),
            })
            .collect();
        let sequential = Executor::new(shared.clone(), 1).run_batch(&queries);
        let concurrent = Executor::new(shared, 4).run_batch(&queries);
        assert_eq!(sequential.len(), concurrent.len());
        for (s, c) in sequential.iter().zip(&concurrent) {
            let s = s.as_ref().expect("fixture queries succeed");
            let c = c.as_ref().expect("fixture queries succeed");
            assert_eq!(s.as_xml(), c.as_xml());
            assert_eq!(s.as_strings(), c.as_strings());
        }
    }
}
