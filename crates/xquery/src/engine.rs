//! The public engine API.
//!
//! An [`Engine`] owns a document store, a per-(document, configuration)
//! region-index cache, and the evaluation options — most importantly the
//! [`StandoffStrategy`] switch the paper's Figure 6 experiment sweeps.

use std::collections::HashMap;
use std::rc::Rc;

use standoff_algebra::{Item, LlSeq};
use standoff_core::{RegionIndex, StandoffConfig, StandoffStrategy};
use standoff_xml::{DocId, Document, Store};

use crate::ast::Query;
use crate::error::QueryError;
use crate::eval::Evaluator;
use crate::parser::parse_query;
use crate::result::QueryResult;

/// Engine-wide evaluation options.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// How StandOff axis steps and built-ins are evaluated.
    pub strategy: StandoffStrategy,
    /// Push element-name tests down into the region index as candidate
    /// sequences (§4.3). Disabling this is the ablation of §3.3(iii).
    pub candidate_pushdown: bool,
    /// Maximum user-defined function call depth.
    pub recursion_limit: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategy: StandoffStrategy::LoopLiftedMergeJoin,
            candidate_pushdown: true,
            recursion_limit: 64,
        }
    }
}

/// Internal mutable state shared with the evaluator.
pub struct EngineState {
    pub store: Store,
    pub options: EngineOptions,
    region_cache: HashMap<(u32, StandoffConfig), Rc<RegionIndex>>,
}

impl EngineState {
    /// The region index of a document under a configuration, built on
    /// first use and cached (documents are immutable).
    pub fn region_index(
        &mut self,
        doc: DocId,
        config: &StandoffConfig,
    ) -> Result<Rc<RegionIndex>, QueryError> {
        let key = (doc.0, config.clone());
        if let Some(idx) = self.region_cache.get(&key) {
            return Ok(Rc::clone(idx));
        }
        let index = Rc::new(RegionIndex::build(self.store.doc(doc), config)?);
        self.region_cache.insert(key, Rc::clone(&index));
        Ok(index)
    }

    /// Invalidate cache entries for documents with id ≥ `len` (paired
    /// with [`standoff_xml::Store::truncate`]).
    pub(crate) fn drop_cache_from(&mut self, len: usize) {
        self.region_cache.retain(|(doc, _), _| (*doc as usize) < len);
    }
}

/// The XQuery engine with StandOff support.
pub struct Engine {
    state: EngineState,
    /// Values for `declare variable $x external` declarations.
    externals: std::collections::HashMap<String, Vec<Item>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        Self::with_options(EngineOptions::default())
    }

    pub fn with_options(options: EngineOptions) -> Self {
        Engine {
            state: EngineState {
                store: Store::new(),
                options,
                region_cache: HashMap::new(),
            },
            externals: std::collections::HashMap::new(),
        }
    }

    /// Provide the value of a `declare variable $name external`
    /// declaration for subsequent runs.
    pub fn bind_external(&mut self, name: &str, items: Vec<Item>) {
        self.externals.insert(name.to_string(), items);
    }

    /// Convenience: bind an external variable to a single string.
    pub fn bind_external_string(&mut self, name: &str, value: &str) {
        self.bind_external(name, vec![Item::str(value)]);
    }

    /// Convenience: bind an external variable to a single integer.
    pub fn bind_external_integer(&mut self, name: &str, value: i64) {
        self.bind_external(name, vec![Item::Integer(value)]);
    }

    /// Parse and register a document under a URI for `fn:doc`.
    pub fn load_document(&mut self, uri: &str, xml: &str) -> Result<DocId, QueryError> {
        Ok(self.state.store.load(uri, xml)?)
    }

    /// Register an already-shredded document.
    pub fn add_document(&mut self, doc: Document, uri: Option<&str>) -> DocId {
        self.state.store.add(doc, uri)
    }

    /// The underlying document store (documents, constructed results).
    pub fn store(&self) -> &Store {
        &self.state.store
    }

    /// Current evaluation options.
    pub fn options(&self) -> &EngineOptions {
        &self.state.options
    }

    /// Switch the StandOff evaluation strategy (Figure 6's independent
    /// variable).
    pub fn set_strategy(&mut self, strategy: StandoffStrategy) {
        self.state.options.strategy = strategy;
    }

    /// Enable/disable candidate-sequence pushdown (§4.3 ablation).
    pub fn set_candidate_pushdown(&mut self, enabled: bool) {
        self.state.options.candidate_pushdown = enabled;
    }

    /// Pre-build the region index for a document under a configuration
    /// (otherwise built lazily on the first StandOff step). Useful to
    /// exclude index construction from benchmark timings, mirroring the
    /// paper's pre-created indices.
    pub fn prebuild_region_index(
        &mut self,
        doc: DocId,
        config: &StandoffConfig,
    ) -> Result<(), QueryError> {
        self.state.region_index(doc, config)?;
        Ok(())
    }

    /// Parse a query without running it.
    pub fn parse(&self, query: &str) -> Result<Query, QueryError> {
        parse_query(query)
    }

    /// Render the evaluation plan of a query under the engine's current
    /// strategy and pushdown settings (see [`crate::explain`]).
    pub fn explain(&self, query: &str) -> Result<String, QueryError> {
        let parsed = parse_query(query)?;
        Ok(crate::explain::explain_query(
            &parsed,
            self.state.options.strategy,
            self.state.options.candidate_pushdown,
        ))
    }

    /// Parse and evaluate a query; returns the materialized result
    /// sequence.
    pub fn run(&mut self, query: &str) -> Result<QueryResult, QueryError> {
        let parsed = parse_query(query)?;
        self.execute(&parsed)
    }

    /// Evaluate a query and return only the result cardinality, dropping
    /// any documents the query constructed. Benchmark harnesses use this
    /// so repeated runs neither pay serialization costs nor accumulate
    /// constructed results in the store.
    pub fn run_and_discard(&mut self, query: &str) -> Result<usize, QueryError> {
        let parsed = parse_query(query)?;
        let docs_before = self.state.store.len();
        let result = self.execute(&parsed);
        self.state.store.truncate(docs_before);
        self.state.drop_cache_from(docs_before);
        result.map(|r| r.len())
    }

    /// Evaluate a previously parsed query.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, QueryError> {
        let config = config_from_prolog(&query.prolog)?;
        let mut evaluator = Evaluator::new(&mut self.state, config);
        // Register user-defined functions (local name, so that prefixed
        // definitions like `standoff:select-narrow` resolve either way).
        for f in &query.prolog.functions {
            let local = f.name.split_once(':').map(|(_, l)| l).unwrap_or(&f.name);
            evaluator
                .functions
                .insert(local.to_string(), Rc::new(f.clone()));
        }
        // External variables must have been bound on the engine.
        for name in &query.prolog.external_variables {
            let items = self.externals.get(name).cloned().ok_or_else(|| {
                QueryError::stat(format!(
                    "external variable ${name} has no value (Engine::bind_external)"
                ))
            })?;
            evaluator.bind(name, LlSeq::for_iter(0, items));
        }
        // Global variables evaluate in declaration order in the root
        // scope.
        for (name, expr) in &query.prolog.variables {
            let value = evaluator.eval(expr)?;
            evaluator.bind(name, value);
        }
        let table = evaluator.eval(&query.body)?;
        let items = table.into_items();
        Ok(QueryResult::new(items, &self.state.store))
    }
}

/// Extract the `standoff-*` options of the prolog into a configuration
/// (paper §2); unknown options are ignored, standoff ones are validated.
fn config_from_prolog(prolog: &crate::ast::Prolog) -> Result<StandoffConfig, QueryError> {
    let mut config = StandoffConfig::default();
    for (name, value) in &prolog.options {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
        match local {
            "standoff-type" => config.position_type = value.clone(),
            "standoff-start" => config.start_name = value.clone(),
            "standoff-end" => config.end_name = value.clone(),
            "standoff-region" => config.region_name = Some(value.clone()),
            "standoff-lenient" => config.lenient = value == "true",
            _ => {} // other engines' options pass through
        }
    }
    config.validate()?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_to_loop_lifted() {
        let engine = Engine::new();
        assert_eq!(
            engine.options().strategy,
            StandoffStrategy::LoopLiftedMergeJoin
        );
        assert!(engine.options().candidate_pushdown);
    }

    #[test]
    fn prolog_standoff_options() {
        let prolog = crate::parser::parse_query(
            r#"declare option standoff-start "from";
               declare option standoff-end "to";
               declare option standoff-region "span";
               1"#,
        )
        .unwrap()
        .prolog;
        let config = config_from_prolog(&prolog).unwrap();
        assert_eq!(config.start_name, "from");
        assert_eq!(config.end_name, "to");
        assert_eq!(config.region_name.as_deref(), Some("span"));
    }

    #[test]
    fn invalid_standoff_type_rejected() {
        let prolog = crate::parser::parse_query(
            r#"declare option standoff-type "xs:duration"; 1"#,
        )
        .unwrap()
        .prolog;
        assert!(config_from_prolog(&prolog).is_err());
    }
}
