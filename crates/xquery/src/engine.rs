//! The public engine API.
//!
//! An [`Engine`] owns a document store, a per-(document, configuration)
//! region-index cache, and the evaluation options — most importantly the
//! [`StandoffStrategy`] switch the paper's Figure 6 experiment sweeps.

use std::collections::HashMap;
use std::rc::Rc;

use standoff_algebra::{Item, LlSeq};
use standoff_core::{RegionIndex, StandoffConfig, StandoffStrategy};
use standoff_xml::{DocId, Document, Store};

use crate::ast::Query;
use crate::error::QueryError;
use crate::eval::Evaluator;
use crate::parser::parse_query;
use crate::result::QueryResult;

/// Engine-wide evaluation options.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// How StandOff axis steps and built-ins are evaluated.
    pub strategy: StandoffStrategy,
    /// Push element-name tests down into the region index as candidate
    /// sequences (§4.3). Disabling this is the ablation of §3.3(iii).
    pub candidate_pushdown: bool,
    /// Maximum user-defined function call depth.
    pub recursion_limit: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategy: StandoffStrategy::LoopLiftedMergeJoin,
            candidate_pushdown: true,
            recursion_limit: 64,
        }
    }
}

/// Internal mutable state shared with the evaluator.
pub struct EngineState {
    pub store: Store,
    pub options: EngineOptions,
    region_cache: HashMap<(u32, StandoffConfig), Rc<RegionIndex>>,
    /// Mounted layer groups: group id → member documents (base first).
    /// StandOff axes join across all members of a group.
    layer_groups: Vec<Vec<DocId>>,
    /// Document id → its layer group, for mounted documents.
    doc_group: HashMap<u32, u32>,
    /// The configuration each mounted layer's index was built under.
    layer_configs: HashMap<u32, StandoffConfig>,
    /// `(store uri, layer name)` → document, for the `layer()` builtin.
    layer_lookup: HashMap<(String, String), DocId>,
}

impl EngineState {
    /// The region index of a document under a configuration, built on
    /// first use and cached (documents are immutable).
    pub fn region_index(
        &mut self,
        doc: DocId,
        config: &StandoffConfig,
    ) -> Result<Rc<RegionIndex>, QueryError> {
        let key = (doc.0, config.clone());
        if let Some(idx) = self.region_cache.get(&key) {
            return Ok(Rc::clone(idx));
        }
        let index = Rc::new(RegionIndex::build(self.store.doc(doc), config)?);
        self.region_cache.insert(key, Rc::clone(&index));
        Ok(index)
    }

    /// Invalidate cache entries for documents with id ≥ `len` (paired
    /// with [`standoff_xml::Store::truncate`]).
    pub(crate) fn drop_cache_from(&mut self, len: usize) {
        self.region_cache
            .retain(|(doc, _), _| (*doc as usize) < len);
    }

    /// The layer group a mounted document belongs to, if any.
    pub(crate) fn layer_group_id(&self, doc: DocId) -> Option<u32> {
        self.doc_group.get(&doc.0).copied()
    }

    /// Member documents of a layer group (base first).
    pub(crate) fn layer_group_members(&self, group: u32) -> &[DocId] {
        &self.layer_groups[group as usize]
    }

    /// The configuration a mounted layer's index was registered under.
    pub(crate) fn layer_config(&self, doc: DocId) -> Option<&StandoffConfig> {
        self.layer_configs.get(&doc.0)
    }

    /// Resolve `layer("uri", "name")` to a mounted layer document.
    pub fn layer_doc(&self, uri: &str, layer: &str) -> Option<DocId> {
        self.layer_lookup
            .get(&(uri.to_string(), layer.to_string()))
            .copied()
    }
}

/// The XQuery engine with StandOff support.
pub struct Engine {
    state: EngineState,
    /// Values for `declare variable $x external` declarations.
    externals: std::collections::HashMap<String, Vec<Item>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        Self::with_options(EngineOptions::default())
    }

    pub fn with_options(options: EngineOptions) -> Self {
        Engine {
            state: EngineState {
                store: Store::new(),
                options,
                region_cache: HashMap::new(),
                layer_groups: Vec::new(),
                doc_group: HashMap::new(),
                layer_configs: HashMap::new(),
                layer_lookup: HashMap::new(),
            },
            externals: std::collections::HashMap::new(),
        }
    }

    /// Provide the value of a `declare variable $name external`
    /// declaration for subsequent runs.
    pub fn bind_external(&mut self, name: &str, items: Vec<Item>) {
        self.externals.insert(name.to_string(), items);
    }

    /// Convenience: bind an external variable to a single string.
    pub fn bind_external_string(&mut self, name: &str, value: &str) {
        self.bind_external(name, vec![Item::str(value)]);
    }

    /// Convenience: bind an external variable to a single integer.
    pub fn bind_external_integer(&mut self, name: &str, value: i64) {
        self.bind_external(name, vec![Item::Integer(value)]);
    }

    /// Parse and register a document under a URI for `fn:doc`.
    ///
    /// Re-registering a plain URI rebinds it (the store's historical
    /// behavior), but URIs claimed by a mounted layer set are protected —
    /// silently shadowing a layer would leave `doc()` and `layer()`
    /// resolving to different documents.
    pub fn load_document(&mut self, uri: &str, xml: &str) -> Result<DocId, QueryError> {
        if let Some(existing) = self.state.store.by_uri(uri) {
            if self.state.layer_group_id(existing).is_some() {
                return Err(QueryError::stat(format!(
                    "cannot load document: '{uri}' is a mounted store layer"
                )));
            }
        }
        Ok(self.state.store.load(uri, xml)?)
    }

    /// Register an already-shredded document.
    pub fn add_document(&mut self, doc: Document, uri: Option<&str>) -> DocId {
        self.state.store.add(doc, uri)
    }

    /// Mount a persistent layer set (typically loaded from a
    /// `standoff-store` snapshot). Returns the base document's id.
    ///
    /// * the base layer registers under the set's URI, so `doc("uri")`
    ///   resolves to it;
    /// * every other layer registers under `uri#name` (also reachable via
    ///   the `layer("uri", "name")` builtin);
    /// * each layer's prebuilt region index is installed in the engine's
    ///   cache under the layer's own configuration — the snapshot's
    ///   indices are used as-is, never rebuilt;
    /// * all layers of the set form one *layer group*: StandOff axis
    ///   steps and the `select-narrow(..)` builtin family join across the
    ///   whole group, so `entities` can be narrowed by `tokens`.
    pub fn mount_store(&mut self, set: standoff_store::LayerSet) -> Result<DocId, QueryError> {
        let (uri, layers) = set.into_layers();
        // Check every URI the mount will claim — the bare store URI and
        // each derived `uri#layer` — before touching any state, so a
        // mount never silently rebinds an existing registration.
        let doc_uris: Vec<String> = layers
            .iter()
            .enumerate()
            .map(|(k, layer)| {
                if k == 0 {
                    uri.clone()
                } else {
                    format!("{uri}#{}", layer.name())
                }
            })
            .collect();
        for doc_uri in &doc_uris {
            if self.state.store.by_uri(doc_uri).is_some() {
                return Err(QueryError::stat(format!(
                    "cannot mount store: a document is already registered at '{doc_uri}'"
                )));
            }
        }
        let group_id = self.state.layer_groups.len() as u32;
        let mut members = Vec::with_capacity(layers.len());
        for (layer, doc_uri) in layers.into_iter().zip(doc_uris) {
            let (name, config, doc, index) = layer.into_parts();
            let id = self.state.store.add(doc, Some(&doc_uri));
            self.state
                .region_cache
                .insert((id.0, config.clone()), Rc::new(index));
            self.state.layer_configs.insert(id.0, config);
            self.state.layer_lookup.insert((uri.clone(), name), id);
            self.state.doc_group.insert(id.0, group_id);
            members.push(id);
        }
        let base = members[0];
        self.state.layer_groups.push(members);
        Ok(base)
    }

    /// The underlying document store (documents, constructed results).
    pub fn store(&self) -> &Store {
        &self.state.store
    }

    /// Current evaluation options.
    pub fn options(&self) -> &EngineOptions {
        &self.state.options
    }

    /// Switch the StandOff evaluation strategy (Figure 6's independent
    /// variable).
    pub fn set_strategy(&mut self, strategy: StandoffStrategy) {
        self.state.options.strategy = strategy;
    }

    /// Enable/disable candidate-sequence pushdown (§4.3 ablation).
    pub fn set_candidate_pushdown(&mut self, enabled: bool) {
        self.state.options.candidate_pushdown = enabled;
    }

    /// Pre-build the region index for a document under a configuration
    /// (otherwise built lazily on the first StandOff step). Useful to
    /// exclude index construction from benchmark timings, mirroring the
    /// paper's pre-created indices.
    pub fn prebuild_region_index(
        &mut self,
        doc: DocId,
        config: &StandoffConfig,
    ) -> Result<(), QueryError> {
        self.state.region_index(doc, config)?;
        Ok(())
    }

    /// Parse a query without running it.
    pub fn parse(&self, query: &str) -> Result<Query, QueryError> {
        parse_query(query)
    }

    /// Render the evaluation plan of a query under the engine's current
    /// strategy and pushdown settings (see [`crate::explain`]).
    pub fn explain(&self, query: &str) -> Result<String, QueryError> {
        let parsed = parse_query(query)?;
        Ok(crate::explain::explain_query(
            &parsed,
            self.state.options.strategy,
            self.state.options.candidate_pushdown,
        ))
    }

    /// Parse and evaluate a query; returns the materialized result
    /// sequence.
    pub fn run(&mut self, query: &str) -> Result<QueryResult, QueryError> {
        let parsed = parse_query(query)?;
        self.execute(&parsed)
    }

    /// Evaluate a query and return only the result cardinality, dropping
    /// any documents the query constructed. Benchmark harnesses use this
    /// so repeated runs neither pay serialization costs nor accumulate
    /// constructed results in the store.
    pub fn run_and_discard(&mut self, query: &str) -> Result<usize, QueryError> {
        let parsed = parse_query(query)?;
        let docs_before = self.state.store.len();
        let result = self.execute(&parsed);
        self.state.store.truncate(docs_before);
        self.state.drop_cache_from(docs_before);
        result.map(|r| r.len())
    }

    /// Evaluate a previously parsed query.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, QueryError> {
        let config = config_from_prolog(&query.prolog)?;
        let mut evaluator = Evaluator::new(&mut self.state, config);
        // Register user-defined functions (local name, so that prefixed
        // definitions like `standoff:select-narrow` resolve either way).
        for f in &query.prolog.functions {
            let local = f.name.split_once(':').map(|(_, l)| l).unwrap_or(&f.name);
            evaluator
                .functions
                .insert(local.to_string(), Rc::new(f.clone()));
        }
        // External variables must have been bound on the engine.
        for name in &query.prolog.external_variables {
            let items = self.externals.get(name).cloned().ok_or_else(|| {
                QueryError::stat(format!(
                    "external variable ${name} has no value (Engine::bind_external)"
                ))
            })?;
            evaluator.bind(name, LlSeq::for_iter(0, items));
        }
        // Global variables evaluate in declaration order in the root
        // scope.
        for (name, expr) in &query.prolog.variables {
            let value = evaluator.eval(expr)?;
            evaluator.bind(name, value);
        }
        let table = evaluator.eval(&query.body)?;
        let items = table.into_items();
        Ok(QueryResult::new(items, &self.state.store))
    }
}

/// Extract the `standoff-*` options of the prolog into a configuration
/// (paper §2); unknown options are ignored, standoff ones are validated.
fn config_from_prolog(prolog: &crate::ast::Prolog) -> Result<StandoffConfig, QueryError> {
    let mut config = StandoffConfig::default();
    for (name, value) in &prolog.options {
        let local = name.split_once(':').map(|(_, l)| l).unwrap_or(name);
        match local {
            "standoff-type" => config.position_type = value.clone(),
            "standoff-start" => config.start_name = value.clone(),
            "standoff-end" => config.end_name = value.clone(),
            "standoff-region" => config.region_name = Some(value.clone()),
            "standoff-lenient" => config.lenient = value == "true",
            _ => {} // other engines' options pass through
        }
    }
    config.validate()?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_to_loop_lifted() {
        let engine = Engine::new();
        assert_eq!(
            engine.options().strategy,
            StandoffStrategy::LoopLiftedMergeJoin
        );
        assert!(engine.options().candidate_pushdown);
    }

    #[test]
    fn prolog_standoff_options() {
        let prolog = crate::parser::parse_query(
            r#"declare option standoff-start "from";
               declare option standoff-end "to";
               declare option standoff-region "span";
               1"#,
        )
        .unwrap()
        .prolog;
        let config = config_from_prolog(&prolog).unwrap();
        assert_eq!(config.start_name, "from");
        assert_eq!(config.end_name, "to");
        assert_eq!(config.region_name.as_deref(), Some("span"));
    }

    #[test]
    fn invalid_standoff_type_rejected() {
        let prolog = crate::parser::parse_query(r#"declare option standoff-type "xs:duration"; 1"#)
            .unwrap()
            .prolog;
        assert!(config_from_prolog(&prolog).is_err());
    }
}
