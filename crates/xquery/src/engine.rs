//! The public engine API.
//!
//! An [`Engine`] owns a document store, a per-(document, configuration)
//! region-index cache, and the evaluation options — most importantly the
//! [`StandoffStrategy`] switch the paper's Figure 6 experiment sweeps.
//!
//! # Shared engines and sessions
//!
//! The engine splits into an immutable side — shredded documents,
//! element-name tables, region indexes, mounted layer sets, options,
//! external variable bindings — and per-query evaluation state (frames,
//! iteration maps, constructed documents). [`Engine::into_shared`]
//! freezes the immutable side behind an [`Arc`]; [`SharedEngine::session`]
//! then stamps out cheap per-thread [`Session`]s that share the corpus
//! but construct results privately. This is the substrate of the
//! concurrent batch executor in [`crate::exec`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use standoff_algebra::{Item, LlSeq};
use standoff_core::join::JoinScratch;
use standoff_core::obs::{Counter, Histogram, MetricsRegistry};
use standoff_core::{Budget, IndexStats, RegionIndex, StandoffConfig, StandoffStrategy};
use standoff_xml::{DocId, Document, Store};

use crate::ast::Query;
use crate::compile::{self, PlanContext};
use crate::error::QueryError;
use crate::eval::Evaluator;
use crate::parser::parse_query;
use crate::plan::Plan;
use crate::profile::{PlanProfile, QueryProfile};
use crate::result::QueryResult;

/// Engine-wide evaluation options.
///
/// These are *compile-time* inputs: the query compiler bakes them into
/// the plan (per-operator strategy and pushdown annotations), so a plan
/// compiled under one set of options is never affected by — and must
/// never be reused under — another. [`EngineOptions::fingerprint`] is
/// the cache-key component that enforces the latter.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// How StandOff axis steps and built-ins are evaluated (ignored per
    /// operator when `auto_strategy` is set).
    pub strategy: StandoffStrategy,
    /// Push element-name tests down into the region index as candidate
    /// sequences (§4.3). Disabling this is the ablation of §3.3(iii).
    pub candidate_pushdown: bool,
    /// Maximum user-defined function call depth.
    pub recursion_limit: usize,
    /// Let the optimizer choose each StandOff operator's strategy from
    /// region-index statistics ([`StandoffStrategy::pick_for`]) instead
    /// of applying `strategy` globally. Off by default so explicit
    /// strategy sweeps (the Figure 6 experiment) keep forcing.
    pub auto_strategy: bool,
    /// Record a per-operator execution profile (wall time, cardinality,
    /// join mechanism decisions — see [`crate::profile`]) for every
    /// query. Off by default; when off the evaluator pays a single
    /// branch per operator (the `TraceSink::enabled` pattern). Unlike
    /// the other options this is a pure *run-time* switch — it never
    /// changes the compiled plan — so it is deliberately **not** part
    /// of [`EngineOptions::fingerprint`]: profiled and unprofiled runs
    /// may share one cached plan.
    pub profile: bool,
    /// Worker threads a single query may fan a dense candidate scan out
    /// over (morsel-driven intra-query parallelism; 1 = sequential).
    /// Like `profile` this is a pure *run-time* switch — the plan and
    /// the results are identical at any thread count — so it is **not**
    /// part of [`EngineOptions::fingerprint`] either.
    pub threads: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategy: StandoffStrategy::LoopLiftedMergeJoin,
            candidate_pushdown: true,
            recursion_limit: 64,
            auto_strategy: false,
            profile: false,
            threads: 1,
        }
    }
}

impl EngineOptions {
    /// A stable fingerprint of every option that influences
    /// compilation. Plan caches key on `(query text, store generation,
    /// options fingerprint)`; omitting the fingerprint would let a plan
    /// compiled under one strategy/pushdown setting serve queries run
    /// under another. `profile` is excluded on purpose — it only
    /// affects execution, and toggling it must *not* fault warmed plans
    /// out of the cache.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the option bytes — stable within a process, which
        // is all a cache key needs.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(self.strategy as u8);
        eat(self.candidate_pushdown as u8);
        eat(self.auto_strategy as u8);
        for b in (self.recursion_limit as u64).to_le_bytes() {
            eat(b);
        }
        hash
    }
}

/// Counters of the StandOff join executor's fast-path decisions, kept on
/// the engine state and readable through [`Engine::join_stats`] /
/// [`Session::join_stats`]. They exist so tests (and curious operators)
/// can assert *mechanism*, not just timing: that a pushdown-guaranteed
/// step really skipped its trailing self-axis pass, that a single-
/// fragment scope really skipped the result sort, and which side of the
/// candidate-intersection cost model an operator landed on.
///
/// # Reset semantics
///
/// The counters are **cumulative per [`Engine`] / per [`Session`]**,
/// never per query: every query run on the same engine or session adds
/// to them. A fresh [`Session`] from [`SharedEngine::session`] starts
/// at zero — it does *not* inherit counts accumulated before the engine
/// was frozen. To meter a single query (or any window), either call
/// [`Engine::reset_join_stats`] first or use
/// [`Engine::take_join_stats`] / [`Session::take_join_stats`], which
/// returns the counts since the last take/reset and zeroes them in one
/// step. The same events are also mirrored into the engine's
/// [`MetricsRegistry`] under `join.*` names, where they accumulate
/// engine-wide across all sessions.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct JoinStats {
    /// Result merges skipped because the scope was a single fragment
    /// (or trivially small) and the join output was already in
    /// `(iter, document-order)`.
    pub result_sorts_elided: u64,
    /// Result merges that had to sort (multi-fragment / multi-layer).
    pub result_sorts: u64,
    /// Trailing `self::test` passes skipped (plan-guaranteed tests).
    pub post_filters_elided: u64,
    /// Trailing `self::test` passes executed.
    pub post_filters: u64,
    /// Candidate intersections taken through the node view (gather).
    pub candidate_node_view: u64,
    /// Candidate intersections taken as full index scans.
    pub candidate_scans: u64,
    /// Scan-path intersections that ran with the dense bitset
    /// representation ([`standoff_core::CandidateRepr::Dense`]).
    pub candidate_repr_dense: u64,
    /// Scan-path intersections that ran with the sparse list
    /// representation.
    pub candidate_repr_sparse: u64,
    /// 64-entry blocks processed by the branch-free kernels (dense
    /// candidate scans + the merge join's single-active emission runs).
    pub candidate_dense_blocks: u64,
    /// Morsels dispatched to the intra-query worker pool (0 ⇒ every
    /// scan ran sequentially — the default at `threads = 1`).
    pub morsels_dispatched: u64,
}

impl JoinStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: JoinStats) {
        self.result_sorts_elided += other.result_sorts_elided;
        self.result_sorts += other.result_sorts;
        self.post_filters_elided += other.post_filters_elided;
        self.post_filters += other.post_filters;
        self.candidate_node_view += other.candidate_node_view;
        self.candidate_scans += other.candidate_scans;
        self.candidate_repr_dense += other.candidate_repr_dense;
        self.candidate_repr_sparse += other.candidate_repr_sparse;
        self.candidate_dense_blocks += other.candidate_dense_blocks;
        self.morsels_dispatched += other.morsels_dispatched;
    }

    /// Absorb the core scan-kernel counters into the engine-level set.
    pub fn merge_kernel(&mut self, kernel: standoff_core::KernelStats) {
        self.candidate_repr_dense += kernel.repr_dense;
        self.candidate_repr_sparse += kernel.repr_sparse;
        self.candidate_dense_blocks += kernel.dense_blocks;
        self.morsels_dispatched += kernel.morsels_dispatched;
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = JoinStats::default();
    }

    /// Return the current counts and zero them — the "delta since last
    /// take" primitive profiling runs use so they never inherit stale
    /// counts.
    pub fn take_delta(&mut self) -> JoinStats {
        std::mem::take(self)
    }
}

/// Pre-registered handles into an engine's [`MetricsRegistry`], created
/// once per engine so hot paths never touch the registry's map lock.
/// Cloning shares the underlying cells (sessions of one shared engine
/// all feed the same counters).
#[derive(Clone)]
pub(crate) struct MetricHandles {
    pub(crate) query_executions: Counter,
    pub(crate) query_exec_ns: Histogram,
    pub(crate) mounts: Counter,
    pub(crate) mount_ns: Histogram,
    pub(crate) join_result_sorts_elided: Counter,
    pub(crate) join_result_sorts: Counter,
    pub(crate) join_post_filters_elided: Counter,
    pub(crate) join_post_filters: Counter,
    pub(crate) join_candidate_node_view: Counter,
    pub(crate) join_candidate_scans: Counter,
    pub(crate) join_candidate_repr_dense: Counter,
    pub(crate) join_candidate_repr_sparse: Counter,
    pub(crate) join_candidate_dense_blocks: Counter,
    pub(crate) join_morsels_dispatched: Counter,
    pub(crate) delta_merge_reads: Counter,
}

impl MetricHandles {
    fn new(registry: &MetricsRegistry) -> MetricHandles {
        MetricHandles {
            query_executions: registry.counter("query.executions"),
            query_exec_ns: registry.histogram("query.exec_ns"),
            mounts: registry.counter("engine.mounts"),
            mount_ns: registry.histogram("engine.mount_ns"),
            join_result_sorts_elided: registry.counter("join.result_sorts_elided"),
            join_result_sorts: registry.counter("join.result_sorts"),
            join_post_filters_elided: registry.counter("join.post_filters_elided"),
            join_post_filters: registry.counter("join.post_filters"),
            join_candidate_node_view: registry.counter("join.candidate_node_view"),
            join_candidate_scans: registry.counter("join.candidate_scans"),
            join_candidate_repr_dense: registry.counter("join.candidate_repr_dense"),
            join_candidate_repr_sparse: registry.counter("join.candidate_repr_sparse"),
            join_candidate_dense_blocks: registry.counter("join.candidate_dense_blocks"),
            join_morsels_dispatched: registry.counter("join.morsels_dispatched"),
            delta_merge_reads: registry.counter("store.delta.merge_reads"),
        }
    }

    /// Mirror one join's stat delta into the registry counters.
    pub(crate) fn record_join(&self, stats: &JoinStats) {
        self.join_result_sorts_elided.add(stats.result_sorts_elided);
        self.join_result_sorts.add(stats.result_sorts);
        self.join_post_filters_elided.add(stats.post_filters_elided);
        self.join_post_filters.add(stats.post_filters);
        self.join_candidate_node_view.add(stats.candidate_node_view);
        self.join_candidate_scans.add(stats.candidate_scans);
        self.join_candidate_repr_dense
            .add(stats.candidate_repr_dense);
        self.join_candidate_repr_sparse
            .add(stats.candidate_repr_sparse);
        self.join_candidate_dense_blocks
            .add(stats.candidate_dense_blocks);
        self.join_morsels_dispatched.add(stats.morsels_dispatched);
    }
}

/// Source of store-generation stamps: every corpus-shaping mutation of
/// any engine draws a fresh, process-unique number. Caches keyed on
/// `(query text, generation)` therefore never serve an entry built
/// against different mounted content, even across unrelated engines.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// The mutable evaluation state behind an engine or session. Cloning
/// yields an independent state sharing the same (Arc'd) documents and
/// region indexes — the basis of per-thread sessions.
#[derive(Clone)]
pub struct EngineState {
    pub store: Store,
    pub options: EngineOptions,
    region_cache: HashMap<(u32, StandoffConfig), Arc<RegionIndex>>,
    /// Mounted layer groups: group id → member documents (base first).
    /// StandOff axes join across all members of a group.
    layer_groups: Vec<Vec<DocId>>,
    /// Document id → its layer group, for mounted documents.
    doc_group: HashMap<u32, u32>,
    /// The configuration each mounted layer's index was built under.
    layer_configs: HashMap<u32, StandoffConfig>,
    /// `(store uri, layer name)` → document, for the `layer()` builtin.
    layer_lookup: HashMap<(String, String), DocId>,
    /// Overlay retractions: document id → strictly ascending,
    /// subtree-expanded pre ranks hidden by a mounted delta. Empty on
    /// pure corpora — the zero-cost common case.
    retracted: HashMap<u32, Arc<Vec<u32>>>,
    /// Parent layer document → the delta document carrying its pending
    /// inserts (mounted as an extra member of the same layer group).
    delta_of: HashMap<u32, DocId>,
    /// Document ids that *are* delta documents.
    delta_docs: std::collections::HashSet<u32>,
    /// Values for `declare variable $x external` declarations.
    externals: HashMap<String, Vec<Item>>,
    /// Reusable buffers for the StandOff join hot path; lives on the
    /// state so batch sessions reuse one allocation set across queries
    /// (cloning a state starts the clone with cold, empty scratch).
    pub(crate) join_scratch: JoinScratch,
    /// Fast-path decision counters (see [`JoinStats`]).
    pub(crate) join_stats: JoinStats,
    /// The engine's metrics registry. Shared (not cloned) across every
    /// session of a [`SharedEngine`], so counters accumulate
    /// engine-wide while tests with private engines stay isolated.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Pre-registered counter/histogram handles into `metrics`.
    pub(crate) handles: MetricHandles,
    /// The per-operator profile of the most recent profiled execution
    /// (see [`EngineOptions::profile`]).
    pub(crate) last_profile: Option<PlanProfile>,
    /// Governance handle for the *next* executions on this state:
    /// deadline, result-cardinality and scratch caps, cooperative
    /// cancellation. Runtime-only — never part of the options
    /// fingerprint (a governed and an ungoverned run share compiled
    /// plans), and cleared when a session is stamped out.
    pub(crate) budget: Option<Budget>,
}

impl EngineState {
    fn new(options: EngineOptions) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let handles = MetricHandles::new(&metrics);
        EngineState {
            store: Store::new(),
            options,
            region_cache: HashMap::new(),
            layer_groups: Vec::new(),
            doc_group: HashMap::new(),
            layer_configs: HashMap::new(),
            layer_lookup: HashMap::new(),
            retracted: HashMap::new(),
            delta_of: HashMap::new(),
            delta_docs: std::collections::HashSet::new(),
            externals: HashMap::new(),
            join_scratch: JoinScratch::default(),
            join_stats: JoinStats::default(),
            metrics,
            handles,
            last_profile: None,
            budget: None,
        }
    }

    /// The region index of a document under a configuration, built on
    /// first use and cached (documents are immutable).
    pub fn region_index(
        &mut self,
        doc: DocId,
        config: &StandoffConfig,
    ) -> Result<Arc<RegionIndex>, QueryError> {
        let key = (doc.0, config.clone());
        if let Some(idx) = self.region_cache.get(&key) {
            return Ok(Arc::clone(idx));
        }
        let index = Arc::new(RegionIndex::build(self.store.doc(doc), config)?);
        self.region_cache.insert(key, Arc::clone(&index));
        Ok(index)
    }

    /// Invalidate cache entries for documents with id ≥ `len` (paired
    /// with [`standoff_xml::Store::truncate`]).
    pub(crate) fn drop_cache_from(&mut self, len: usize) {
        self.region_cache
            .retain(|(doc, _), _| (*doc as usize) < len);
    }

    /// The layer group a mounted document belongs to, if any.
    pub(crate) fn layer_group_id(&self, doc: DocId) -> Option<u32> {
        self.doc_group.get(&doc.0).copied()
    }

    /// Member documents of a layer group (base first).
    pub(crate) fn layer_group_members(&self, group: u32) -> &[DocId] {
        &self.layer_groups[group as usize]
    }

    /// The configuration a mounted layer's index was registered under.
    pub(crate) fn layer_config(&self, doc: DocId) -> Option<&StandoffConfig> {
        self.layer_configs.get(&doc.0)
    }

    /// Resolve `layer("uri", "name")` to a mounted layer document.
    pub fn layer_doc(&self, uri: &str, layer: &str) -> Option<DocId> {
        self.layer_lookup
            .get(&(uri.to_string(), layer.to_string()))
            .copied()
    }

    /// Overlay retractions of a document: strictly ascending,
    /// subtree-expanded pre ranks hidden until the next compaction.
    /// Empty for pure (non-overlay) documents.
    pub(crate) fn retractions_of(&self, doc: DocId) -> &[u32] {
        self.retracted.get(&doc.0).map_or(&[], |v| v.as_slice())
    }

    /// Does any mounted document carry retractions? A single branch that
    /// keeps the pure read path free of per-node retraction checks.
    #[inline]
    pub(crate) fn has_retractions(&self) -> bool {
        !self.retracted.is_empty()
    }

    /// Is `doc` a mounted delta document (pending overlay inserts)?
    pub(crate) fn is_delta_doc(&self, doc: DocId) -> bool {
        self.delta_docs.contains(&doc.0)
    }

    /// The delta document mounted over a layer document, if any.
    pub(crate) fn delta_doc_of(&self, doc: DocId) -> Option<DocId> {
        self.delta_of.get(&doc.0).copied()
    }

    /// Does any mounted document carry a delta companion? The pure-mount
    /// fast-path branch for tree-step context expansion.
    #[inline]
    pub(crate) fn has_delta_docs(&self) -> bool {
        !self.delta_docs.is_empty()
    }

    /// The layer document a delta document overlays (inverse of
    /// [`Self::delta_doc_of`]). Linear in the number of overlaid layers,
    /// which is small and only walked on overlay mounts.
    pub(crate) fn base_doc_of(&self, delta: DocId) -> Option<DocId> {
        self.delta_of
            .iter()
            .find(|(_, d)| **d == delta)
            .map(|(base, _)| DocId(*base))
    }

    /// The compilation context this state offers the query compiler:
    /// current options plus statistics of every region index available
    /// right now (mounted snapshot indexes and lazily built ones).
    /// Estimates are off — execution paths don't pay for explain-only
    /// annotations; inspection entry points flip
    /// [`PlanContext::estimates`] on.
    pub fn plan_context(&self) -> PlanContext<'_> {
        let mut stats = IndexStats::default();
        for ((doc, _), index) in self.region_cache.iter() {
            // Overlay retractions are subtracted per index, so the
            // optimizer costs the *visible* corpus, not the raw columns.
            let retracted = self.retracted.get(doc).map_or(&[][..], |v| v.as_slice());
            stats.merge(standoff_core::RegionSource::with_retractions(index, retracted).stats());
        }
        PlanContext {
            options: &self.options,
            store: Some(&self.store),
            index_stats: stats,
            estimates: false,
            retracted: if self.retracted.is_empty() {
                None
            } else {
                Some(&self.retracted)
            },
            delta_docs: if self.delta_docs.is_empty() {
                None
            } else {
                Some(&self.delta_docs)
            },
        }
    }

    /// Compile a parsed query against this state (lower + optimize).
    pub fn compile(&self, query: &Query) -> Result<Plan, QueryError> {
        compile::compile(query, &self.plan_context())
    }

    /// Compile and evaluate a previously parsed query against this
    /// state.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, QueryError> {
        let plan = self.compile(query)?;
        self.execute_plan(&plan)
    }

    /// Evaluate a compiled plan against this state — the single
    /// execution entry point every query path funnels through. Always
    /// meters `query.executions` / `query.exec_ns` in the engine's
    /// registry; records a per-operator [`PlanProfile`] (retrievable
    /// via `take_last_profile`) when [`EngineOptions::profile`] is on.
    pub fn execute_plan(&mut self, plan: &Plan) -> Result<QueryResult, QueryError> {
        let started = Instant::now();
        // A budget that tripped before we even start (deadline already
        // past, request cancelled in the queue) refuses cleanly here.
        if let Some(b) = &self.budget {
            b.check()?;
        }
        // External variable values are cloned out first so the evaluator
        // can borrow the state mutably.
        let mut external_values = Vec::with_capacity(plan.externals.len());
        for name in &plan.externals {
            let items = self.externals.get(name).cloned().ok_or_else(|| {
                QueryError::stat(format!(
                    "external variable ${name} has no value (Engine::bind_external)"
                ))
            })?;
            external_values.push((name.clone(), items));
        }
        let profiling = self.options.profile;
        let mut evaluator = Evaluator::new(self, plan.config.clone());
        if profiling {
            evaluator.enable_profiling();
        }
        evaluator.functions = plan.functions.clone();
        for (name, items) in external_values {
            evaluator.bind(&name, LlSeq::for_iter(0, items));
        }
        // Global variables evaluate in declaration order in the root
        // scope.
        let outcome = (|| {
            for (name, expr) in &plan.globals {
                let value = evaluator.eval(expr)?;
                evaluator.bind(name, value);
            }
            evaluator.eval(&plan.body)
        })();
        let profile = evaluator.take_profile();
        if profiling {
            self.last_profile = profile;
        }
        self.handles.query_executions.inc();
        self.handles
            .query_exec_ns
            .record_duration(started.elapsed());
        let items = outcome?.into_items();
        Ok(QueryResult::new(items, &self.store))
    }

    /// The per-operator profile of the most recent profiled execution,
    /// consuming it. `None` unless [`EngineOptions::profile`] was on.
    pub fn take_last_profile(&mut self) -> Option<PlanProfile> {
        self.last_profile.take()
    }
}

/// The XQuery engine with StandOff support.
pub struct Engine {
    state: EngineState,
    /// Stamp of the last corpus-shaping mutation (see
    /// [`SharedEngine::generation`]).
    generation: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        Self::with_options(EngineOptions::default())
    }

    pub fn with_options(options: EngineOptions) -> Self {
        Engine {
            state: EngineState::new(options),
            generation: fresh_generation(),
        }
    }

    /// Provide the value of a `declare variable $name external`
    /// declaration for subsequent runs.
    pub fn bind_external(&mut self, name: &str, items: Vec<Item>) {
        self.state.externals.insert(name.to_string(), items);
        self.generation = fresh_generation();
    }

    /// Convenience: bind an external variable to a single string.
    pub fn bind_external_string(&mut self, name: &str, value: &str) {
        self.bind_external(name, vec![Item::str(value)]);
    }

    /// Convenience: bind an external variable to a single integer.
    pub fn bind_external_integer(&mut self, name: &str, value: i64) {
        self.bind_external(name, vec![Item::Integer(value)]);
    }

    /// Parse and register a document under a URI for `fn:doc`.
    ///
    /// Re-registering a plain URI rebinds it (the store's historical
    /// behavior), but URIs claimed by a mounted layer set are protected —
    /// silently shadowing a layer would leave `doc()` and `layer()`
    /// resolving to different documents.
    pub fn load_document(&mut self, uri: &str, xml: &str) -> Result<DocId, QueryError> {
        if let Some(existing) = self.state.store.by_uri(uri) {
            if self.state.layer_group_id(existing).is_some() {
                return Err(QueryError::stat(format!(
                    "cannot load document: '{uri}' is a mounted store layer"
                )));
            }
        }
        let id = self.state.store.load(uri, xml)?;
        self.generation = fresh_generation();
        Ok(id)
    }

    /// Register an already-shredded document.
    pub fn add_document(&mut self, doc: Document, uri: Option<&str>) -> DocId {
        let id = self.state.store.add(doc, uri);
        self.generation = fresh_generation();
        id
    }

    /// Mount a persistent layer set (typically loaded from a
    /// `standoff-store` snapshot). Returns the base document's id.
    ///
    /// * the base layer registers under the set's URI, so `doc("uri")`
    ///   resolves to it;
    /// * every other layer registers under `uri#name` (also reachable via
    ///   the `layer("uri", "name")` builtin);
    /// * each layer's prebuilt region index is installed in the engine's
    ///   cache under the layer's own configuration — the snapshot's
    ///   indices are used as-is, never rebuilt;
    /// * all layers of the set form one *layer group*: StandOff axis
    ///   steps and the `select-narrow(..)` builtin family join across the
    ///   whole group, so `entities` can be narrowed by `tokens`.
    pub fn mount_store(&mut self, set: standoff_store::LayerSet) -> Result<DocId, QueryError> {
        let started = Instant::now();
        let (uri, layers) = set.into_layers();
        // Check every URI the mount will claim — the bare store URI and
        // each derived `uri#layer` — before touching any state, so a
        // mount never silently rebinds an existing registration.
        let doc_uris: Vec<String> = layers
            .iter()
            .enumerate()
            .map(|(k, layer)| {
                if k == 0 {
                    uri.clone()
                } else {
                    format!("{uri}#{}", layer.name())
                }
            })
            .collect();
        for doc_uri in &doc_uris {
            if self.state.store.by_uri(doc_uri).is_some() {
                return Err(QueryError::stat(format!(
                    "cannot mount store: a document is already registered at '{doc_uri}'"
                )));
            }
        }
        let group_id = self.state.layer_groups.len() as u32;
        let mut members = Vec::with_capacity(layers.len());
        for (layer, doc_uri) in layers.into_iter().zip(doc_uris) {
            let (name, config, doc, index) = layer.into_parts();
            // The document and index stay shared with the layer set (and,
            // for mounted snapshots, with the snapshot's layer cache):
            // mounting is pointer plumbing, not a copy of column data.
            let id = self.state.store.add_shared(doc, Some(&doc_uri));
            self.state
                .region_cache
                .insert((id.0, config.clone()), index);
            self.state.layer_configs.insert(id.0, config);
            self.state.layer_lookup.insert((uri.clone(), name), id);
            self.state.doc_group.insert(id.0, group_id);
            members.push(id);
        }
        let base = members[0];
        self.state.layer_groups.push(members);
        self.generation = fresh_generation();
        self.state.handles.mounts.inc();
        self.state
            .handles
            .mount_ns
            .record_duration(started.elapsed());
        Ok(base)
    }

    /// Mount every layer of a [`standoff_store::Snapshot`] — the
    /// *prefetch* form of snapshot mounting: all layers are materialized
    /// up front (zero-copy for v3 files) and shared with the snapshot's
    /// layer cache. To mount selectively, materialize layers through
    /// [`standoff_store::Snapshot::layer`] and assemble a
    /// [`standoff_store::LayerSet`] for [`Engine::mount_store`].
    pub fn mount_snapshot(
        &mut self,
        snapshot: &standoff_store::Snapshot,
    ) -> Result<DocId, QueryError> {
        let started = Instant::now();
        let set = snapshot
            .to_layer_set()
            .map_err(|e| QueryError::stat(format!("cannot mount snapshot: {e}")))?;
        self.state
            .metrics
            .record("engine.snapshot_materialize_ns", elapsed_ns(started));
        self.mount_store(set)
    }

    /// Mount a layer set together with a pending [`DeltaSet`] overlay —
    /// the merge-on-read mount behind [`crate::WritableEngine`].
    ///
    /// The base and annotation layers register exactly as in
    /// [`Engine::mount_store`]. On top of that, per mutated layer:
    ///
    /// * pending **inserts** materialize as a small sibling document
    ///   (`uri#layer#delta`) mounted into the same layer group,
    ///   *immediately after* its parent layer — document ids drive
    ///   cross-document order, and compaction appends inserts at the end
    ///   of the parent's root, so adjacency keeps the merged stream and
    ///   the compacted snapshot in the same document order;
    /// * pending **retracts** become the layer's hidden-pre set, which
    ///   joins, tree steps and the optimizer's statistics subtract via
    ///   [`standoff_core::RegionSource`].
    ///
    /// With an empty delta this *is* `mount_store` — same registrations,
    /// same zero-copy index sharing, no overlay bookkeeping at all.
    pub fn mount_overlay(
        &mut self,
        set: standoff_store::LayerSet,
        delta: &standoff_store::DeltaSet,
    ) -> Result<DocId, QueryError> {
        if delta.is_empty() {
            return self.mount_store(set);
        }
        let started = Instant::now();
        let (uri, layers) = set.into_layers();
        let overlay_err =
            |e: standoff_store::StoreError| QueryError::stat(format!("cannot mount overlay: {e}"));
        // Per layer: registration URI, hidden pres, and the materialized
        // insert document (if any) with its derived URI. Prepared fully
        // before any state is touched so a failed mount changes nothing.
        let mut prepared = Vec::with_capacity(layers.len());
        for (k, layer) in layers.iter().enumerate() {
            let doc_uri = if k == 0 {
                uri.clone()
            } else {
                format!("{uri}#{}", layer.name())
            };
            let (retracted, insert_doc) = match delta.layer_delta(layer.name()) {
                Some(d) => (
                    d.retracted_pres(layer),
                    d.insert_doc(layer).map_err(overlay_err)?,
                ),
                None => (Vec::new(), None),
            };
            let delta_uri = insert_doc.as_ref().map(|_| format!("{doc_uri}#delta"));
            prepared.push((doc_uri, retracted, insert_doc, delta_uri));
        }
        for (doc_uri, _, _, delta_uri) in &prepared {
            for u in std::iter::once(doc_uri).chain(delta_uri.as_ref()) {
                if self.state.store.by_uri(u).is_some() {
                    return Err(QueryError::stat(format!(
                        "cannot mount store: a document is already registered at '{u}'"
                    )));
                }
            }
        }
        let group_id = self.state.layer_groups.len() as u32;
        let mut members = Vec::with_capacity(layers.len());
        for (layer, (doc_uri, retracted, insert_doc, delta_uri)) in layers.into_iter().zip(prepared)
        {
            let (name, config, doc, index) = layer.into_parts();
            let id = self.state.store.add_shared(doc, Some(&doc_uri));
            self.state
                .region_cache
                .insert((id.0, config.clone()), index);
            self.state.layer_configs.insert(id.0, config.clone());
            self.state.layer_lookup.insert((uri.clone(), name), id);
            self.state.doc_group.insert(id.0, group_id);
            members.push(id);
            if !retracted.is_empty() {
                self.state.retracted.insert(id.0, Arc::new(retracted));
            }
            if let Some(ddoc) = insert_doc {
                let dindex = standoff_core::RegionIndex::build(&ddoc, &config)
                    .map_err(|e| QueryError::stat(format!("cannot mount overlay: {e}")))?;
                let did = self
                    .state
                    .store
                    .add_shared(Arc::new(ddoc), delta_uri.as_deref());
                self.state
                    .region_cache
                    .insert((did.0, config.clone()), Arc::new(dindex));
                self.state.layer_configs.insert(did.0, config);
                self.state.doc_group.insert(did.0, group_id);
                self.state.delta_of.insert(id.0, did);
                self.state.delta_docs.insert(did.0);
                members.push(did);
            }
        }
        let base = members[0];
        self.state.layer_groups.push(members);
        self.generation = fresh_generation();
        self.state.handles.mounts.inc();
        self.state
            .handles
            .mount_ns
            .record_duration(started.elapsed());
        Ok(base)
    }

    /// The underlying document store (documents, constructed results).
    pub fn store(&self) -> &Store {
        &self.state.store
    }

    /// Current evaluation options.
    pub fn options(&self) -> &EngineOptions {
        &self.state.options
    }

    /// Counters of the join executor's fast-path decisions accumulated
    /// by queries run on this engine — cumulative since creation or the
    /// last reset/take (see [`JoinStats`] for the full semantics).
    pub fn join_stats(&self) -> JoinStats {
        self.state.join_stats
    }

    /// Reset the [`JoinStats`] counters to zero.
    pub fn reset_join_stats(&mut self) {
        self.state.join_stats.reset();
    }

    /// The [`JoinStats`] accumulated since the last take/reset, zeroing
    /// the counters (see [`JoinStats::take_delta`]).
    pub fn take_join_stats(&mut self) -> JoinStats {
        self.state.join_stats.take_delta()
    }

    /// The engine's metrics registry: join mechanism counters, query
    /// execution timings, mount timings. Shared with every [`Session`]
    /// stamped out after [`Engine::into_shared`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.state.metrics
    }

    /// Enable/disable per-operator execution profiling (see
    /// [`EngineOptions::profile`]). A pure run-time switch — compiled
    /// and cached plans are unaffected.
    pub fn set_profile(&mut self, enabled: bool) {
        self.state.options.profile = enabled;
    }

    /// The per-operator profile of the most recent profiled run,
    /// consuming it (`None` unless profiling was on).
    pub fn take_last_profile(&mut self) -> Option<PlanProfile> {
        self.state.take_last_profile()
    }

    /// Run a query with per-operator profiling forced on, returning the
    /// result together with the executed plan and its profile. The plan
    /// is compiled with explain-grade estimates so renderings can show
    /// estimate-vs-actual drift.
    pub fn run_profiled(&mut self, query: &str) -> Result<(QueryResult, QueryProfile), QueryError> {
        let plan = Arc::new(self.compile(query)?);
        let was = self.state.options.profile;
        self.state.options.profile = true;
        let outcome = self.state.execute_plan(&plan);
        self.state.options.profile = was;
        let ops = self.state.last_profile.take().unwrap_or_default();
        Ok((outcome?, QueryProfile { plan, ops }))
    }

    /// `explain analyze`: execute the query with profiling and render
    /// the plan tree annotated with measured rows/time per operator
    /// next to the optimizer's estimates (see [`crate::explain`]).
    pub fn explain_analyze(&mut self, query: &str) -> Result<String, QueryError> {
        let (result, profile) = self.run_profiled(query)?;
        let mut out = profile.render();
        out.push_str(&format!("result: {} item(s)\n", result.len()));
        Ok(out)
    }

    /// Switch the StandOff evaluation strategy (Figure 6's independent
    /// variable).
    ///
    /// Option changes do *not* bump the store generation: the
    /// generation stamps corpus identity, while plan caches key the
    /// options separately via [`EngineOptions::fingerprint`].
    pub fn set_strategy(&mut self, strategy: StandoffStrategy) {
        self.state.options.strategy = strategy;
    }

    /// Enable/disable candidate-sequence pushdown (§4.3 ablation).
    pub fn set_candidate_pushdown(&mut self, enabled: bool) {
        self.state.options.candidate_pushdown = enabled;
    }

    /// Enable/disable per-operator strategy selection from index
    /// statistics (see [`EngineOptions::auto_strategy`]).
    pub fn set_auto_strategy(&mut self, enabled: bool) {
        self.state.options.auto_strategy = enabled;
    }

    /// Set the intra-query morsel parallelism budget (see
    /// [`EngineOptions::threads`]). A run-time switch: results and plans
    /// are identical at any thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.state.options.threads = threads.max(1);
    }

    /// Install (or clear, with `None`) the governance budget for
    /// subsequent runs on this engine: deadline, result-cardinality and
    /// scratch-memory caps, and cooperative cancellation via
    /// [`Budget::cancel`]. A run-time switch like profiling — compiled
    /// and cached plans are unaffected, and an exhausted budget must be
    /// replaced (budgets do not reset between queries).
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.state.budget = budget;
    }

    /// Pre-build the region index for a document under a configuration
    /// (otherwise built lazily on the first StandOff step). Useful to
    /// exclude index construction from benchmark timings, mirroring the
    /// paper's pre-created indices — and to build an index once *before*
    /// [`Engine::into_shared`] instead of once per session after.
    pub fn prebuild_region_index(
        &mut self,
        doc: DocId,
        config: &StandoffConfig,
    ) -> Result<(), QueryError> {
        self.state.region_index(doc, config)?;
        Ok(())
    }

    /// Parse a query without running it.
    pub fn parse(&self, query: &str) -> Result<Query, QueryError> {
        parse_query(query)
    }

    /// Compile a query into its optimized plan without running it —
    /// the same pipeline [`Engine::run`] executes, plus the
    /// explain-grade `estimate` pass [`Engine::explain`] renders.
    pub fn compile(&self, query: &str) -> Result<Plan, QueryError> {
        let parsed = parse_query(query)?;
        let mut ctx = self.state.plan_context();
        ctx.estimates = true;
        compile::compile(&parsed, &ctx)
    }

    /// Render the optimized plan of a query under the engine's current
    /// options and corpus statistics (see [`crate::explain`]). The text
    /// is generated from the very plan object execution would run.
    pub fn explain(&self, query: &str) -> Result<String, QueryError> {
        let plan = self.compile(query)?;
        Ok(crate::explain::explain_plan(&plan))
    }

    /// Parse, compile, optimize and evaluate a query; returns the
    /// materialized result sequence.
    pub fn run(&mut self, query: &str) -> Result<QueryResult, QueryError> {
        let parsed = parse_query(query)?;
        self.execute(&parsed)
    }

    /// Evaluate a query through the *unoptimized* direct-AST lowering —
    /// the reference path the `plan_equivalence` suite holds the
    /// optimizer against. Not a production entry point.
    #[doc(hidden)]
    pub fn run_unoptimized(&mut self, query: &str) -> Result<QueryResult, QueryError> {
        let parsed = parse_query(query)?;
        let plan = compile::lower(&parsed, &self.state.plan_context())?;
        self.state.execute_plan(&plan)
    }

    /// Evaluate a query and return only the result cardinality, dropping
    /// any documents the query constructed. Benchmark harnesses use this
    /// so repeated runs neither pay serialization costs nor accumulate
    /// constructed results in the store.
    pub fn run_and_discard(&mut self, query: &str) -> Result<usize, QueryError> {
        let parsed = parse_query(query)?;
        let docs_before = self.state.store.len();
        let result = self.state.execute(&parsed);
        self.state.store.truncate(docs_before);
        self.state.drop_cache_from(docs_before);
        result.map(|r| r.len())
    }

    /// Evaluate a previously parsed query.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, QueryError> {
        self.state.execute(query)
    }

    /// The engine's current store-generation stamp: changes whenever a
    /// corpus-shaping mutation (load, mount, rebind, reconfigure)
    /// happens. See [`SharedEngine::generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Freeze this engine into an immutable, thread-shareable corpus.
    ///
    /// Everything loaded or mounted so far — documents, element-name
    /// tables, region indexes built or installed up to this point,
    /// layer groups, options, external bindings — becomes the shared
    /// base every [`Session`] evaluates against.
    pub fn into_shared(self) -> SharedEngine {
        SharedEngine {
            core: Arc::new(self.state),
            generation: self.generation,
        }
    }
}

/// The immutable side of an engine, shareable across threads.
///
/// Cloning is one atomic increment; every clone sees the same corpus.
/// Stamp out a [`Session`] per worker thread to evaluate queries.
#[derive(Clone)]
pub struct SharedEngine {
    core: Arc<EngineState>,
    generation: u64,
}

impl SharedEngine {
    /// Create a per-thread evaluation session over the shared corpus.
    ///
    /// The session clone costs a pointer copy per shared document plus
    /// the (small) URI / layer maps — no document or index data is
    /// copied. The session's [`JoinStats`] start at zero (it does not
    /// inherit counts accumulated before the freeze); its metrics
    /// registry is *shared* with the engine and every sibling session.
    pub fn session(&self) -> Session {
        let mut state = self.core.as_ref().clone();
        state.join_stats.reset();
        state.last_profile = None;
        // Governance is per request, never inherited: a budget frozen
        // into the shared core must not govern (or cancel) every
        // future session.
        state.budget = None;
        Session {
            base_docs: self.core.store.len(),
            state,
        }
    }

    /// The generation stamp of the frozen corpus: changes whenever the
    /// originating engine loaded, mounted or rebound anything before
    /// freezing. Cache keys derived from query text must include it
    /// *and* the options fingerprint (see [`crate::exec::QueryCache`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shared document store.
    pub fn store(&self) -> &Store {
        &self.core.store
    }

    /// The evaluation options the corpus was frozen with.
    pub fn options(&self) -> &EngineOptions {
        &self.core.options
    }

    /// The metrics registry shared by the originating engine and every
    /// session over this corpus (including those of
    /// [`SharedEngine::with_options`] variants).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.metrics
    }

    /// The same corpus under different evaluation options — strategy
    /// sweeps over one mounted corpus without re-loading anything. The
    /// generation stamp is preserved (the corpus is identical); plan
    /// caches distinguish the variants by options fingerprint.
    pub fn with_options(&self, options: EngineOptions) -> SharedEngine {
        let mut state = self.core.as_ref().clone();
        state.options = options;
        SharedEngine {
            core: Arc::new(state),
            generation: self.generation,
        }
    }

    /// Compile a query against the frozen corpus — current options and
    /// index statistics included. This is the plan cache's compile
    /// path, so explain-only estimate annotations are skipped; use
    /// [`Engine::compile`]/[`Engine::explain`] for inspection.
    pub fn compile(&self, query: &str) -> Result<Plan, QueryError> {
        let parsed = parse_query(query)?;
        self.core.compile(&parsed)
    }
}

/// A per-thread query evaluation session over a [`SharedEngine`].
///
/// Sessions are cheap to create, own their per-query mutable state
/// (constructed documents, lazily built region indexes), and share the
/// immutable corpus with every sibling session. A session is `Send` but
/// deliberately not `Sync` — one worker drives it at a time.
pub struct Session {
    state: EngineState,
    /// Shared documents at session creation; everything at or beyond
    /// this id is session-local (query-constructed).
    base_docs: usize,
}

impl Session {
    /// Parse and evaluate a query.
    pub fn run(&mut self, query: &str) -> Result<QueryResult, QueryError> {
        let parsed = parse_query(query)?;
        self.execute(&parsed)
    }

    /// Compile and evaluate a previously parsed query.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, QueryError> {
        self.state.execute(query)
    }

    /// Evaluate a previously compiled plan (the batch executor's hot
    /// path — compilation happened once, in the shared plan cache).
    pub fn execute_plan(&mut self, plan: &Plan) -> Result<QueryResult, QueryError> {
        self.state.execute_plan(plan)
    }

    /// Drop session-local constructed documents and their cached
    /// indexes, returning the session to its post-creation state. Call
    /// between queries to keep long-lived worker sessions from
    /// accumulating constructed results.
    pub fn reset(&mut self) {
        self.state.store.truncate(self.base_docs);
        self.state.drop_cache_from(self.base_docs);
    }

    /// The session's store view (shared base + session-local documents).
    pub fn store(&self) -> &Store {
        &self.state.store
    }

    /// Counters of the join executor's fast-path decisions accumulated
    /// by queries run in this session — cumulative since session
    /// creation or the last reset/take; a fresh session always starts
    /// at zero (see [`JoinStats`]).
    pub fn join_stats(&self) -> JoinStats {
        self.state.join_stats
    }

    /// Reset the [`JoinStats`] counters to zero.
    pub fn reset_join_stats(&mut self) {
        self.state.join_stats.reset();
    }

    /// The [`JoinStats`] accumulated since the last take/reset, zeroing
    /// the counters (see [`JoinStats::take_delta`]).
    pub fn take_join_stats(&mut self) -> JoinStats {
        self.state.join_stats.take_delta()
    }

    /// The metrics registry — shared with the engine this session came
    /// from and all of its sibling sessions.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.state.metrics
    }

    /// Enable/disable per-operator execution profiling for this session
    /// (see [`EngineOptions::profile`]).
    pub fn set_profile(&mut self, enabled: bool) {
        self.state.options.profile = enabled;
    }

    /// Set this session's intra-query morsel parallelism budget (see
    /// [`EngineOptions::threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.state.options.threads = threads.max(1);
    }

    /// Install (or clear) the governance budget for subsequent queries
    /// in this session (see [`Engine::set_budget`]). The governed
    /// executor sets a fresh budget per request; keep a clone to
    /// [`Budget::cancel`] from another thread.
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.state.budget = budget;
    }

    /// The per-operator profile of the most recent profiled run in this
    /// session, consuming it (`None` unless profiling was on).
    pub fn take_last_profile(&mut self) -> Option<PlanProfile> {
        self.state.take_last_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::config_from_prolog;

    #[test]
    fn options_default_to_loop_lifted() {
        let engine = Engine::new();
        assert_eq!(
            engine.options().strategy,
            StandoffStrategy::LoopLiftedMergeJoin
        );
        assert!(engine.options().candidate_pushdown);
    }

    #[test]
    fn prolog_standoff_options() {
        let prolog = crate::parser::parse_query(
            r#"declare option standoff-start "from";
               declare option standoff-end "to";
               declare option standoff-region "span";
               1"#,
        )
        .unwrap()
        .prolog;
        let config = config_from_prolog(&prolog).unwrap();
        assert_eq!(config.start_name, "from");
        assert_eq!(config.end_name, "to");
        assert_eq!(config.region_name.as_deref(), Some("span"));
    }

    #[test]
    fn invalid_standoff_type_rejected() {
        let prolog = crate::parser::parse_query(r#"declare option standoff-type "xs:duration"; 1"#)
            .unwrap()
            .prolog;
        assert!(config_from_prolog(&prolog).is_err());
    }

    #[test]
    fn shared_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<SharedEngine>();
        assert_send::<Session>();
        assert_send::<QueryResult>();
    }

    #[test]
    fn sessions_share_documents_but_not_constructions() {
        let mut engine = Engine::new();
        engine.load_document("d.xml", "<a><b/><b/></a>").unwrap();
        let shared = engine.into_shared();
        let mut s1 = shared.session();
        let mut s2 = shared.session();
        // A constructor adds a session-local document…
        let r1 = s1.run(r#"<wrap>{count(doc("d.xml")//b)}</wrap>"#).unwrap();
        assert_eq!(r1.as_xml(), "<wrap>2</wrap>");
        assert_eq!(s1.store().len(), shared.store().len() + 1);
        // …invisible to the sibling session and the shared corpus.
        assert_eq!(s2.store().len(), shared.store().len());
        let r2 = s2.run(r#"count(doc("d.xml")//b)"#).unwrap();
        assert_eq!(r2.as_strings(), ["2"]);
        // Reset drops the construction.
        s1.reset();
        assert_eq!(s1.store().len(), shared.store().len());
    }

    #[test]
    fn generation_changes_on_mutation() {
        let mut engine = Engine::new();
        engine.load_document("a", "<a/>").unwrap();
        let g0 = engine.generation();
        engine.load_document("b", "<b/>").unwrap();
        assert_ne!(g0, engine.generation());
        let other = Engine::new();
        // Stamps are process-unique, never reused across engines.
        assert_ne!(other.generation(), engine.generation());
    }
}
