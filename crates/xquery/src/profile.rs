//! Per-operator execution profiles.
//!
//! When profiling is enabled ([`crate::engine::EngineOptions::profile`])
//! the evaluator records, for every plan operator it executes, wall
//! time, call count, output cardinality and — for StandOff joins — the
//! join-level mechanism decisions (context size, candidate-set sizes,
//! node-view vs. scan access, sort/post-filter elisions). The result is
//! a [`PlanProfile`]: a side table keyed by operator identity, paired
//! with its [`Plan`] in a [`QueryProfile`].
//!
//! # Operator ids
//!
//! Plan operators carry no inline id field; instead every operator has
//! a **stable operator id**: its position in the plan's deterministic
//! pre-order traversal ([`Plan::visit_exprs`] — globals, then function
//! bodies, then the query body). [`operator_ids`] computes the mapping
//! once per rendering; the same plan always yields the same numbering,
//! which is what `explain analyze` prints as `#n` and what the JSON
//! profile reports as `"id"`. Internally the profile is keyed by
//! operator *address*, which is stable for the lifetime of the compiled
//! plan (plans are immutable after compilation and shared by `Arc`).

use std::collections::HashMap;
use std::sync::Arc;

use crate::engine::JoinStats;
use crate::plan::{Plan, PlanExpr};

/// Measurements of one plan operator across one query execution.
#[derive(Clone, Debug, Default)]
pub struct OpMetrics {
    /// Times the operator was evaluated (≥ 2 inside UDF re-entry or
    /// per-branch evaluation; loop-lifting keeps this 1 for most plans).
    pub calls: u64,
    /// Wall time, **inclusive of child operators** (the tree renderer
    /// shows the hierarchy, so exclusive time is recoverable by eye).
    pub wall_ns: u64,
    /// Total rows (`iter|item` table entries) the operator produced.
    pub out_rows: u64,
    /// StandOff-join mechanism details, for join operators only.
    pub join: Option<JoinExec>,
}

/// Join-level execution detail of one StandOff join operator.
#[derive(Clone, Debug, Default)]
pub struct JoinExec {
    /// Context rows fed into the join (before per-document bucketing).
    pub ctx_rows: u64,
    /// Total candidate-set size across all (unit × target) pairs that
    /// had a candidate restriction.
    pub cand_rows: u64,
    /// Largest single candidate set seen.
    pub cand_max: u64,
    /// Candidate rows contributed by overlay delta documents (subset of
    /// `cand_rows`); zero on a pure-snapshot mount.
    pub delta_cand_rows: u64,
    /// Join calls that read through a merged base+delta region stream
    /// or a delta document — merge-on-read work, vs pure zero-copy.
    pub merge_reads: u64,
    /// The join's fast-path decision counters (same meaning as the
    /// engine-wide [`JoinStats`], restricted to this operator).
    pub stats: JoinStats,
}

/// Per-operator measurements of one executed plan, keyed by operator
/// identity. Obtain one via [`crate::Engine::run_profiled`] /
/// [`crate::Session::take_last_profile`].
#[derive(Clone, Debug, Default)]
pub struct PlanProfile {
    pub(crate) ops: HashMap<usize, OpMetrics>,
}

impl PlanProfile {
    /// Measurements of `expr`, if it executed. `expr` must belong to
    /// the plan this profile was recorded against.
    pub fn get(&self, expr: &PlanExpr) -> Option<&OpMetrics> {
        self.ops.get(&(expr as *const PlanExpr as usize))
    }

    /// Number of operators that recorded at least one call.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub(crate) fn op_mut(&mut self, key: usize) -> &mut OpMetrics {
        self.ops.entry(key).or_default()
    }
}

/// A plan together with the profile of one of its executions — the
/// self-contained unit `explain analyze` and `--profile-json` render.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    pub plan: Arc<Plan>,
    pub ops: PlanProfile,
}

impl QueryProfile {
    /// The `explain analyze` tree with measured times.
    pub fn render(&self) -> String {
        crate::explain::explain_analyze(&self.plan, &self.ops, false)
    }

    /// The `explain analyze` tree with times redacted — deterministic
    /// output for golden tests.
    pub fn render_redacted(&self) -> String {
        crate::explain::explain_analyze(&self.plan, &self.ops, true)
    }

    /// Machine-readable profile: a JSON object with the pass list and
    /// one entry per *executed* operator, in stable-id order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"passes\": [");
        for (k, p) in self.plan.passes.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{p}\""));
        }
        out.push_str("],\n  \"operators\": [");
        let mut first = true;
        let mut id = 0u32;
        self.plan.visit_exprs(&mut |expr| {
            let this_id = id;
            id += 1;
            let Some(m) = self.ops.get(expr) else { return };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"id\": {}, \"kind\": \"{}\", \"calls\": {}, \"rows\": {}, \"wall_ns\": {}",
                this_id,
                op_kind(expr),
                m.calls,
                m.out_rows,
                m.wall_ns
            ));
            if let Some(j) = &m.join {
                out.push_str(&format!(
                    ", \"join\": {{\"ctx_rows\": {}, \"cand_rows\": {}, \"cand_max\": {}, \
                     \"delta_cand_rows\": {}, \"merge_reads\": {}, \
                     \"node_view\": {}, \"scans\": {}, \
                     \"repr_dense\": {}, \"repr_sparse\": {}, \
                     \"dense_blocks\": {}, \"morsels\": {}, \"result_sorts\": {}, \
                     \"result_sorts_elided\": {}, \"post_filters\": {}, \"post_filters_elided\": {}}}",
                    j.ctx_rows,
                    j.cand_rows,
                    j.cand_max,
                    j.delta_cand_rows,
                    j.merge_reads,
                    j.stats.candidate_node_view,
                    j.stats.candidate_scans,
                    j.stats.candidate_repr_dense,
                    j.stats.candidate_repr_sparse,
                    j.stats.candidate_dense_blocks,
                    j.stats.morsels_dispatched,
                    j.stats.result_sorts,
                    j.stats.result_sorts_elided,
                    j.stats.post_filters,
                    j.stats.post_filters_elided
                ));
            }
            if let PlanExpr::StandoffStep { op, .. } | PlanExpr::StandoffFn { op, .. } = expr {
                if let Some(est) = &op.estimate {
                    out.push_str(&format!(
                        ", \"estimate\": {{\"entries\": {}, \"candidates\": {}}}",
                        est.index.entries,
                        est.candidates
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "null".to_string())
                    ));
                }
            }
            out.push('}');
        });
        out.push_str("\n  ]\n}");
        out
    }
}

/// The stable id of every operator in `plan`: address → pre-order
/// position under [`Plan::visit_exprs`]. Deterministic per plan.
pub fn operator_ids(plan: &Plan) -> HashMap<usize, u32> {
    let mut ids = HashMap::new();
    let mut next = 0u32;
    plan.visit_exprs(&mut |expr| {
        ids.insert(expr as *const PlanExpr as usize, next);
        next += 1;
    });
    ids
}

/// Short kind label of an operator (JSON `"kind"` field).
pub fn op_kind(expr: &PlanExpr) -> &'static str {
    match expr {
        PlanExpr::Const(_) => "const",
        PlanExpr::Var(_) => "var",
        PlanExpr::ContextItem => "context-item",
        PlanExpr::Sequence(_) => "sequence",
        PlanExpr::Flwor { .. } => "flwor",
        PlanExpr::Quantified { .. } => "quantified",
        PlanExpr::IfThenElse { .. } => "if",
        PlanExpr::Or(..) => "or",
        PlanExpr::And(..) => "and",
        PlanExpr::Comparison(..) => "compare",
        PlanExpr::Arith(..) => "arith",
        PlanExpr::Range(..) => "range",
        PlanExpr::Neg(_) => "negate",
        PlanExpr::Union(..) => "union",
        PlanExpr::Intersect(..) => "intersect",
        PlanExpr::Except(..) => "except",
        PlanExpr::TreeStep { .. } => "tree-step",
        PlanExpr::StandoffStep { .. } => "standoff-step",
        PlanExpr::PathExpr { .. } => "path",
        PlanExpr::RootPath => "root",
        PlanExpr::Filter { .. } => "filter",
        PlanExpr::UdfCall { .. } => "udf-call",
        PlanExpr::StandoffFn { .. } => "standoff-join",
        PlanExpr::BuiltinCall { .. } => "builtin-call",
        PlanExpr::Constructor(_) => "construct",
    }
}

/// Human time rendering for `explain analyze` (`1.2µs`, `3.4ms`, …).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}
