//! Plan explanation.
//!
//! Renders a **compiled, optimized plan** — the very object the
//! evaluator executes — as an indented operator tree, annotated with the
//! loop-lifting structure (which operators open new iteration scopes)
//! and, for StandOff joins, the per-operator plan decisions: the join
//! algorithm the optimizer selected, whether (and which) element-name
//! candidate sequence is pushed down, and the cardinality estimate from
//! the corpus's region-index statistics. The textual shape mirrors how
//! Pathfinder plans are usually shown.
//!
//! Because the text is generated from the plan rather than the AST, it
//! cannot drift from execution: what explain prints *is* what runs.

use std::collections::HashMap;
use std::fmt::Write as _;

use standoff_core::StandoffStrategy;

use crate::plan::*;
use crate::profile::{fmt_ns, operator_ids, PlanProfile};

/// Render the optimized plan.
pub fn explain_plan(plan: &Plan) -> String {
    render_plan(plan, None)
}

/// Render the optimized plan annotated with one execution's measurements
/// — the `explain analyze` text. Every operator's head line gains an
/// `-- actual #id:` block with call count, output rows and wall time
/// (plus join mechanism detail for StandOff joins); operators the
/// execution never reached say so. With `redact` the times print as `~`,
/// which keeps the output deterministic for golden tests.
pub fn explain_analyze(plan: &Plan, profile: &PlanProfile, redact: bool) -> String {
    let ctx = AnalyzeCtx {
        ids: operator_ids(plan),
        profile,
        redact,
    };
    render_plan(plan, Some(&ctx))
}

fn render_plan(plan: &Plan, ctx: Option<&AnalyzeCtx>) -> String {
    let mut out = String::new();
    if !plan.passes.is_empty() {
        let _ = writeln!(out, "passes: {}", plan.passes.join(" → "));
    }
    if !plan.options.is_empty() {
        out.push_str("options:\n");
        for (k, v) in &plan.options {
            let _ = writeln!(out, "  {k} = \"{v}\"");
        }
    }
    for f in &plan.functions {
        let _ = writeln!(out, "function {}({}):", f.name, f.params.join(", "));
        explain_expr_in(&f.body, 1, &mut out, ctx);
    }
    for (name, expr) in &plan.globals {
        let _ = writeln!(out, "global ${name} :=");
        explain_expr_in(expr, 1, &mut out, ctx);
    }
    out.push_str("plan:\n");
    explain_expr_in(&plan.body, 1, &mut out, ctx);
    out
}

/// The measurement side-channel of `explain analyze`: stable operator
/// ids plus the recorded profile, threaded through the renderer.
struct AnalyzeCtx<'a> {
    ids: HashMap<usize, u32>,
    profile: &'a PlanProfile,
    redact: bool,
}

impl AnalyzeCtx<'_> {
    /// The `-- actual` block for one operator's head line.
    fn annotation(&self, expr: &PlanExpr) -> Option<String> {
        let key = expr as *const PlanExpr as usize;
        let id = self.ids.get(&key)?;
        let Some(m) = self.profile.ops.get(&key) else {
            return Some(format!("  -- actual #{id}: not executed"));
        };
        let time = if self.redact {
            "~".to_string()
        } else {
            fmt_ns(m.wall_ns)
        };
        let mut note = format!(
            "  -- actual #{id}: calls={} rows={} time={time}",
            m.calls, m.out_rows
        );
        if let Some(j) = &m.join {
            let _ = write!(
                note,
                " | join ctx={} cands={} (max {}) node-view={} scan={} sorts={} (elided {}) post={} (elided {})",
                j.ctx_rows,
                j.cand_rows,
                j.cand_max,
                j.stats.candidate_node_view,
                j.stats.candidate_scans,
                j.stats.result_sorts,
                j.stats.result_sorts_elided,
                j.stats.post_filters,
                j.stats.post_filters_elided,
            );
            // Scan-kernel detail: which candidate representation the
            // scans ran with, branch-free blocks, and morsel dispatch.
            // Gated on nonzero so gather-only lines render unchanged.
            if j.stats.candidate_repr_dense
                + j.stats.candidate_repr_sparse
                + j.stats.candidate_dense_blocks
                + j.stats.morsels_dispatched
                > 0
            {
                let _ = write!(
                    note,
                    " repr dense={} sparse={} blocks={} morsels={}",
                    j.stats.candidate_repr_dense,
                    j.stats.candidate_repr_sparse,
                    j.stats.candidate_dense_blocks,
                    j.stats.morsels_dispatched,
                );
            }
            // Only an overlay mount can make these nonzero; pure
            // snapshots keep the historical analyze line untouched.
            if j.merge_reads > 0 || j.delta_cand_rows > 0 {
                let _ = write!(
                    note,
                    " delta-cands={} merge-reads={}",
                    j.delta_cand_rows, j.merge_reads
                );
            }
        }
        Some(note)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    indent(out, depth);
    out.push_str(text);
    out.push('\n');
}

/// The annotation block of one StandOff join operator.
/// `explicit_candidates` is set for the built-in function form with a
/// second argument, which overrides any name-test pushdown at run time
/// — the note must describe the candidate source actually used.
fn standoff_note(op: &StandoffOp, explicit_candidates: bool) -> String {
    let algo = match op.strategy {
        StandoffStrategy::NaiveNoCandidates => "nested loop over all elements",
        StandoffStrategy::NaiveWithCandidates => "nested loop over candidates",
        StandoffStrategy::BasicMergeJoin => "StandOff MergeJoin per iteration (basic)",
        StandoffStrategy::LoopLiftedMergeJoin => {
            "loop-lifted StandOff MergeJoin, single index scan"
        }
    };
    // The candidate-intersection access path: when the estimate pass
    // left cardinalities, the gather-vs-scan decision the index will
    // make at run time ([`standoff_core::index::node_view_preferred`])
    // is reported here from the same cost rule; on the scan branch, the
    // candidate representation ([`standoff_core::index::dense_repr_preferred`]
    // on the estimated count/span) is tagged alongside. The span
    // estimate ignores retractions, so a borderline overlay query may
    // print the other tag than the runtime `repr` counters report —
    // results are identical either way.
    let access = |count: Option<u64>| match (count, &op.estimate) {
        (Some(c), Some(est)) if est.index.entries > 0 => {
            if standoff_core::index::node_view_preferred(c as usize, est.index.entries) {
                " [node-view]".to_string()
            } else {
                let span = est.candidate_span.unwrap_or(c);
                if standoff_core::index::dense_repr_preferred(c as usize, span, est.index.entries) {
                    " [scan] [dense-bitset]".to_string()
                } else {
                    " [scan] [sparse-list]".to_string()
                }
            }
        }
        _ => String::new(),
    };
    let cand = if explicit_candidates {
        "candidates: explicit node sequence ∩ region index".to_string()
    } else {
        match &op.pushdown {
            Some(name) => {
                let path = access(op.estimate.as_ref().and_then(|e| e.candidates));
                format!("candidates: element index '{name}' ∩ region index{path}")
            }
            None => "candidates: full region index".to_string(),
        }
    };
    let mut note = format!("{algo}; {cand}");
    // The result-sort elision is a runtime decision (it needs the actual
    // fragment count of the scope), so explain states the rule, not a
    // verdict; JoinStats reports what actually happened.
    let _ = write!(note, "; sorted-merge: elided for single-fragment scopes");
    let _ = write!(
        note,
        "; post-filter: {}",
        if op.test_guaranteed {
            "elided"
        } else {
            "self-step"
        }
    );
    if let Some(est) = &op.estimate {
        let _ = write!(
            note,
            "; est: {} region entr{}",
            est.index.entries,
            if est.index.entries == 1 { "y" } else { "ies" },
        );
        if let Some(c) = est.candidates {
            let _ = write!(note, ", ≈{c} candidate(s)");
        }
        // Overlay mounts only: how much of the candidate stream is
        // merge-on-read delta vs base snapshot. Pure mounts render
        // byte-identically to before (the estimate is `None`).
        if let Some(d) = est.delta_candidates.filter(|&d| d > 0) {
            let _ = write!(note, ", {d} from delta overlay");
        }
        if est.index.max_regions > 1 {
            let _ = write!(note, ", ≤{} region(s)/annotation", est.index.max_regions);
        }
    }
    note
}

/// Render one operator subtree, then splice the analyze annotation (if
/// any) into the operator's head line — the first line the arm emitted.
/// Children are already rendered (and annotated) by the time the parent
/// splices, so the insertion point is always the parent's own newline.
fn explain_expr_in(expr: &PlanExpr, depth: usize, out: &mut String, ctx: Option<&AnalyzeCtx>) {
    let head_start = out.len();
    explain_expr_body(expr, depth, out, ctx);
    if let Some(actx) = ctx {
        if let Some(note) = actx.annotation(expr) {
            if let Some(pos) = out[head_start..].find('\n') {
                out.insert_str(head_start + pos, &note);
            }
        }
    }
}

fn explain_expr_body(expr: &PlanExpr, depth: usize, out: &mut String, ctx: Option<&AnalyzeCtx>) {
    match expr {
        PlanExpr::Const(atom) => {
            let text = match atom {
                Atom::Integer(i) => format!("const {i}"),
                Atom::Double(d) => format!("const {d}"),
                Atom::String(s) => format!("const \"{s}\""),
                Atom::Boolean(b) => format!("const {b}()"),
            };
            line(out, depth, &text);
        }
        PlanExpr::Var(v) => line(out, depth, &format!("var ${v}")),
        PlanExpr::ContextItem => line(out, depth, "context-item"),
        PlanExpr::Sequence(items) => {
            line(out, depth, &format!("sequence [{} parts]", items.len()));
            for e in items {
                explain_expr_in(e, depth + 1, out, ctx);
            }
        }
        PlanExpr::Flwor {
            hoisted,
            clauses,
            where_clause,
            order_by,
            return_clause,
        } => {
            line(out, depth, "flwor");
            for (name, expr) in hoisted {
                line(
                    out,
                    depth + 1,
                    &format!("hoisted ${name} :=  -- loop-invariant, once per host iteration"),
                );
                explain_expr_in(expr, depth + 2, out, ctx);
            }
            for clause in clauses {
                match clause {
                    PlanClause::For { var, at, seq } => {
                        let at = at.as_ref().map(|a| format!(" at ${a}")).unwrap_or_default();
                        line(
                            out,
                            depth + 1,
                            &format!("for ${var}{at} in  -- opens a new iteration scope"),
                        );
                        explain_expr_in(seq, depth + 2, out, ctx);
                    }
                    PlanClause::Let { var, value } => {
                        line(out, depth + 1, &format!("let ${var} :="));
                        explain_expr_in(value, depth + 2, out, ctx);
                    }
                }
            }
            if let Some(w) = where_clause {
                line(out, depth + 1, "where  -- restricts the loop relation");
                explain_expr_in(w, depth + 2, out, ctx);
            }
            for key in order_by {
                line(
                    out,
                    depth + 1,
                    if key.descending {
                        "order by (descending)"
                    } else {
                        "order by"
                    },
                );
                explain_expr_in(&key.expr, depth + 2, out, ctx);
            }
            line(out, depth + 1, "return");
            explain_expr_in(return_clause, depth + 2, out, ctx);
        }
        PlanExpr::Quantified {
            every,
            bindings,
            satisfies,
        } => {
            line(out, depth, if *every { "every" } else { "some" });
            for (var, seq) in bindings {
                line(out, depth + 1, &format!("${var} in"));
                explain_expr_in(seq, depth + 2, out, ctx);
            }
            line(out, depth + 1, "satisfies");
            explain_expr_in(satisfies, depth + 2, out, ctx);
        }
        PlanExpr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            line(
                out,
                depth,
                "if  -- branches evaluated on split loop relations",
            );
            explain_expr_in(cond, depth + 1, out, ctx);
            line(out, depth, "then");
            explain_expr_in(then_branch, depth + 1, out, ctx);
            line(out, depth, "else");
            explain_expr_in(else_branch, depth + 1, out, ctx);
        }
        PlanExpr::Or(a, b) | PlanExpr::And(a, b) => {
            line(
                out,
                depth,
                if matches!(expr, PlanExpr::Or(..)) {
                    "or"
                } else {
                    "and"
                },
            );
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::Comparison(op, a, b) => {
            line(out, depth, &format!("compare {op:?}"));
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::Arith(op, a, b) => {
            line(out, depth, &format!("arith {op:?}"));
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::Range(a, b) => {
            line(out, depth, "range to");
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::Neg(e) => {
            line(out, depth, "negate");
            explain_expr_in(e, depth + 1, out, ctx);
        }
        PlanExpr::Union(a, b) => {
            line(out, depth, "union (doc-order dedup)");
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::Intersect(a, b) => {
            line(out, depth, "intersect (node identity)");
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::Except(a, b) => {
            line(out, depth, "except (node identity)");
            explain_expr_in(a, depth + 1, out, ctx);
            explain_expr_in(b, depth + 1, out, ctx);
        }
        PlanExpr::TreeStep {
            input,
            axis,
            test,
            predicates,
        } => {
            line(
                out,
                depth,
                &format!(
                    "step {}::{test}  [staircase join, loop-lifted]",
                    axis.as_str()
                ),
            );
            explain_step_tail(input.as_deref(), predicates, depth, out, ctx);
        }
        PlanExpr::StandoffStep {
            input,
            op,
            test,
            predicates,
        } => {
            line(
                out,
                depth,
                &format!(
                    "step {}::{test}  [{}]",
                    op.axis.as_str(),
                    standoff_note(op, false)
                ),
            );
            explain_step_tail(input.as_deref(), predicates, depth, out, ctx);
        }
        PlanExpr::PathExpr { input, step } => {
            line(out, depth, "path  -- maps rhs over lhs items");
            explain_expr_in(input, depth + 1, out, ctx);
            explain_expr_in(step, depth + 1, out, ctx);
        }
        PlanExpr::RootPath => line(out, depth, "root()"),
        PlanExpr::Filter { input, predicate } => {
            line(out, depth, "filter");
            explain_expr_in(input, depth + 1, out, ctx);
            line(out, depth + 1, "predicate");
            explain_expr_in(predicate, depth + 2, out, ctx);
        }
        PlanExpr::UdfCall { name, args, .. } => {
            line(out, depth, &format!("call {name}({} args)", args.len()));
            for a in args {
                explain_expr_in(a, depth + 1, out, ctx);
            }
        }
        PlanExpr::StandoffFn {
            op,
            ctx: join_ctx,
            candidates,
        } => {
            line(
                out,
                depth,
                &format!(
                    "standoff-join {}(..)  [{}]",
                    op.axis.as_str(),
                    standoff_note(op, candidates.is_some())
                ),
            );
            line(out, depth + 1, "context");
            explain_expr_in(join_ctx, depth + 2, out, ctx);
            if let Some(c) = candidates {
                line(out, depth + 1, "candidates");
                explain_expr_in(c, depth + 2, out, ctx);
            }
        }
        PlanExpr::BuiltinCall { name, args } => {
            line(out, depth, &format!("call {name}({} args)", args.len()));
            for a in args {
                explain_expr_in(a, depth + 1, out, ctx);
            }
        }
        PlanExpr::Constructor(c) => {
            line(
                out,
                depth,
                &format!("construct <{}>  [one element per iteration]", c.name),
            );
            for (name, _) in &c.attributes {
                line(out, depth + 1, &format!("attribute {name}"));
            }
            for part in &c.content {
                match part {
                    PlanContent::Text(t) => line(out, depth + 1, &format!("text {t:?}")),
                    PlanContent::Enclosed(e) => {
                        line(out, depth + 1, "enclosed");
                        explain_expr_in(e, depth + 2, out, ctx);
                    }
                    PlanContent::Element(child) => {
                        line(out, depth + 1, &format!("child <{}>", child.name));
                    }
                }
            }
        }
    }
}

fn explain_step_tail(
    input: Option<&PlanExpr>,
    predicates: &[PlanExpr],
    depth: usize,
    out: &mut String,
    ctx: Option<&AnalyzeCtx>,
) {
    if let Some(input) = input {
        explain_expr_in(input, depth + 1, out, ctx);
    } else {
        line(out, depth + 1, "context-item");
    }
    for p in predicates {
        line(out, depth + 1, "predicate");
        explain_expr_in(p, depth + 2, out, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, PlanContext};
    use crate::engine::EngineOptions;
    use crate::parser::parse_query;

    fn explain_with(q: &str, options: &EngineOptions) -> String {
        let parsed = parse_query(q).unwrap();
        let plan = compile(&parsed, &PlanContext::bare(options)).unwrap();
        explain_plan(&plan)
    }

    #[test]
    fn explains_standoff_step_with_strategy() {
        let options = EngineOptions::default();
        let text = explain_with("//music/select-narrow::shot", &options);
        assert!(text.contains("select-narrow::shot"), "{text}");
        assert!(text.contains("loop-lifted StandOff MergeJoin"), "{text}");
        assert!(text.contains("element index 'shot'"), "{text}");

        let options = EngineOptions {
            strategy: standoff_core::StandoffStrategy::BasicMergeJoin,
            candidate_pushdown: false,
            ..EngineOptions::default()
        };
        let text = explain_with("//music/select-narrow::shot", &options);
        assert!(text.contains("per iteration (basic)"), "{text}");
        assert!(text.contains("full region index"), "{text}");
    }

    #[test]
    fn explains_flwor_scopes() {
        let text = explain_with(
            "for $x in (1,2) where $x > 1 order by $x return <r>{ $x }</r>",
            &EngineOptions::default(),
        );
        assert!(text.contains("opens a new iteration scope"), "{text}");
        assert!(text.contains("restricts the loop relation"), "{text}");
        assert!(text.contains("order by"), "{text}");
        assert!(text.contains("construct <r>"), "{text}");
    }

    #[test]
    fn explains_functions_and_options() {
        let text = explain_with(
            r#"declare option standoff-start "from";
               declare function f($x) { $x + 1 };
               f(1)"#,
            &EngineOptions::default(),
        );
        assert!(text.contains("standoff-start"), "{text}");
        assert!(text.contains("function f(x)"), "{text}");
        assert!(text.contains("call f(1 args)"), "{text}");
    }

    #[test]
    fn explains_pass_list_and_hoists() {
        let text = explain_with(
            r#"for $i in 1 to 10 return count(doc("d")//w)"#,
            &EngineOptions::default(),
        );
        assert!(
            text.starts_with("passes: const-fold → hoist-invariants"),
            "{text}"
        );
        assert!(text.contains("hoisted $#h0"), "{text}");
    }
}
