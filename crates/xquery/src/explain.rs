//! Plan explanation.
//!
//! Renders the evaluation plan of a parsed query as an indented operator
//! tree, annotated with the loop-lifting structure (which sub-expressions
//! open new iteration scopes) and, for StandOff steps, the algorithm the
//! current strategy selects and whether a candidate sequence is pushed
//! down. The textual shape mirrors how Pathfinder plans are usually
//! shown.

use std::fmt::Write as _;

use standoff_core::StandoffStrategy;

use crate::ast::*;

/// Render an explanation for a query body under the given strategy and
/// pushdown setting.
pub fn explain_query(query: &Query, strategy: StandoffStrategy, pushdown: bool) -> String {
    let mut out = String::new();
    if !query.prolog.options.is_empty() {
        out.push_str("options:\n");
        for (k, v) in &query.prolog.options {
            let _ = writeln!(out, "  {k} = \"{v}\"");
        }
    }
    for f in &query.prolog.functions {
        let _ = writeln!(out, "function {}({}):", f.name, f.params.join(", "));
        explain_expr(&f.body, 1, strategy, pushdown, &mut out);
    }
    out.push_str("plan:\n");
    explain_expr(&query.body, 1, strategy, pushdown, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    indent(out, depth);
    out.push_str(text);
    out.push('\n');
}

fn explain_expr(
    expr: &Expr,
    depth: usize,
    strategy: StandoffStrategy,
    pushdown: bool,
    out: &mut String,
) {
    match expr {
        Expr::IntLit(v) => line(out, depth, &format!("const {v} (lifted per iteration)")),
        Expr::DoubleLit(v) => line(out, depth, &format!("const {v}")),
        Expr::StringLit(v) => line(out, depth, &format!("const \"{v}\"")),
        Expr::VarRef(v) => line(out, depth, &format!("var ${v}")),
        Expr::ContextItem => line(out, depth, "context-item"),
        Expr::Sequence(items) => {
            line(out, depth, &format!("sequence [{} parts]", items.len()));
            for e in items {
                explain_expr(e, depth + 1, strategy, pushdown, out);
            }
        }
        Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            return_clause,
        } => {
            line(out, depth, "flwor");
            for clause in clauses {
                match clause {
                    FlworClause::For { var, at, seq } => {
                        let at = at.as_ref().map(|a| format!(" at ${a}")).unwrap_or_default();
                        line(
                            out,
                            depth + 1,
                            &format!("for ${var}{at} in  -- opens a new iteration scope"),
                        );
                        explain_expr(seq, depth + 2, strategy, pushdown, out);
                    }
                    FlworClause::Let { var, value } => {
                        line(out, depth + 1, &format!("let ${var} :="));
                        explain_expr(value, depth + 2, strategy, pushdown, out);
                    }
                }
            }
            if let Some(w) = where_clause {
                line(out, depth + 1, "where  -- restricts the loop relation");
                explain_expr(w, depth + 2, strategy, pushdown, out);
            }
            for key in order_by {
                line(
                    out,
                    depth + 1,
                    if key.descending {
                        "order by (descending)"
                    } else {
                        "order by"
                    },
                );
                explain_expr(&key.expr, depth + 2, strategy, pushdown, out);
            }
            line(out, depth + 1, "return");
            explain_expr(return_clause, depth + 2, strategy, pushdown, out);
        }
        Expr::Quantified {
            every,
            bindings,
            satisfies,
        } => {
            line(out, depth, if *every { "every" } else { "some" });
            for (var, seq) in bindings {
                line(out, depth + 1, &format!("${var} in"));
                explain_expr(seq, depth + 2, strategy, pushdown, out);
            }
            line(out, depth + 1, "satisfies");
            explain_expr(satisfies, depth + 2, strategy, pushdown, out);
        }
        Expr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            line(
                out,
                depth,
                "if  -- branches evaluated on split loop relations",
            );
            explain_expr(cond, depth + 1, strategy, pushdown, out);
            line(out, depth, "then");
            explain_expr(then_branch, depth + 1, strategy, pushdown, out);
            line(out, depth, "else");
            explain_expr(else_branch, depth + 1, strategy, pushdown, out);
        }
        Expr::Or(a, b) | Expr::And(a, b) => {
            line(
                out,
                depth,
                if matches!(expr, Expr::Or(..)) {
                    "or"
                } else {
                    "and"
                },
            );
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Comparison(op, a, b) => {
            line(out, depth, &format!("compare {op:?}"));
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Arith(op, a, b) => {
            line(out, depth, &format!("arith {op:?}"));
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Range(a, b) => {
            line(out, depth, "range to");
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Neg(e) => {
            line(out, depth, "negate");
            explain_expr(e, depth + 1, strategy, pushdown, out);
        }
        Expr::Union(a, b) => {
            line(out, depth, "union (doc-order dedup)");
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Intersect(a, b) => {
            line(out, depth, "intersect (node identity)");
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Except(a, b) => {
            line(out, depth, "except (node identity)");
            explain_expr(a, depth + 1, strategy, pushdown, out);
            explain_expr(b, depth + 1, strategy, pushdown, out);
        }
        Expr::Step {
            input,
            axis,
            test,
            predicates,
        } => {
            let test_str = match (&test.name, test.kind) {
                (Some(n), _) => n.clone(),
                (None, standoff_algebra::KindTest::Element) => "*".to_string(),
                (None, k) => format!("{k:?}").to_lowercase() + "()",
            };
            match axis {
                Axis::Tree(t) => line(
                    out,
                    depth,
                    &format!(
                        "step {}::{test_str}  [staircase join, loop-lifted]",
                        t.as_str()
                    ),
                ),
                Axis::Standoff(s) => {
                    let algo = match strategy {
                        StandoffStrategy::NaiveNoCandidates => "nested loop over all elements",
                        StandoffStrategy::NaiveWithCandidates => "nested loop over candidates",
                        StandoffStrategy::BasicMergeJoin => {
                            "StandOff MergeJoin per iteration (basic)"
                        }
                        StandoffStrategy::LoopLiftedMergeJoin => {
                            "loop-lifted StandOff MergeJoin, single index scan"
                        }
                    };
                    let cand = if pushdown
                        && test.name.is_some()
                        && strategy != StandoffStrategy::NaiveNoCandidates
                    {
                        format!("candidates: element index '{test_str}' ∩ region index")
                    } else {
                        "candidates: full region index".to_string()
                    };
                    line(
                        out,
                        depth,
                        &format!("step {}::{test_str}  [{algo}; {cand}]", s.as_str()),
                    );
                }
            }
            if let Some(input) = input {
                explain_expr(input, depth + 1, strategy, pushdown, out);
            } else {
                line(out, depth + 1, "context-item");
            }
            for p in predicates {
                line(out, depth + 1, "predicate");
                explain_expr(p, depth + 2, strategy, pushdown, out);
            }
        }
        Expr::PathExpr { input, step } => {
            line(out, depth, "path  -- maps rhs over lhs items");
            explain_expr(input, depth + 1, strategy, pushdown, out);
            explain_expr(step, depth + 1, strategy, pushdown, out);
        }
        Expr::RootPath(_) => line(out, depth, "root()"),
        Expr::Filter { input, predicate } => {
            line(out, depth, "filter");
            explain_expr(input, depth + 1, strategy, pushdown, out);
            line(out, depth + 1, "predicate");
            explain_expr(predicate, depth + 2, strategy, pushdown, out);
        }
        Expr::FunctionCall { name, args } => {
            line(out, depth, &format!("call {name}({} args)", args.len()));
            for a in args {
                explain_expr(a, depth + 1, strategy, pushdown, out);
            }
        }
        Expr::Constructor(c) => {
            line(
                out,
                depth,
                &format!("construct <{}>  [one element per iteration]", c.name),
            );
            for (name, _) in &c.attributes {
                line(out, depth + 1, &format!("attribute {name}"));
            }
            for part in &c.content {
                match part {
                    ConstructorContent::Text(t) => line(out, depth + 1, &format!("text {t:?}")),
                    ConstructorContent::Enclosed(e) => {
                        line(out, depth + 1, "enclosed");
                        explain_expr(e, depth + 2, strategy, pushdown, out);
                    }
                    ConstructorContent::Element(child) => {
                        line(out, depth + 1, &format!("child <{}>", child.name));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn explains_standoff_step_with_strategy() {
        let q = parse_query("//music/select-narrow::shot").unwrap();
        let text = explain_query(&q, StandoffStrategy::LoopLiftedMergeJoin, true);
        assert!(text.contains("select-narrow::shot"), "{text}");
        assert!(text.contains("loop-lifted StandOff MergeJoin"), "{text}");
        assert!(text.contains("element index 'shot'"), "{text}");

        let text = explain_query(&q, StandoffStrategy::BasicMergeJoin, false);
        assert!(text.contains("per iteration (basic)"), "{text}");
        assert!(text.contains("full region index"), "{text}");
    }

    #[test]
    fn explains_flwor_scopes() {
        let q =
            parse_query("for $x in (1,2) where $x > 1 order by $x return <r>{ $x }</r>").unwrap();
        let text = explain_query(&q, StandoffStrategy::LoopLiftedMergeJoin, true);
        assert!(text.contains("opens a new iteration scope"), "{text}");
        assert!(text.contains("restricts the loop relation"), "{text}");
        assert!(text.contains("order by"), "{text}");
        assert!(text.contains("construct <r>"), "{text}");
    }

    #[test]
    fn explains_functions_and_options() {
        let q = parse_query(
            r#"declare option standoff-start "from";
               declare function f($x) { $x + 1 };
               f(1)"#,
        )
        .unwrap();
        let text = explain_query(&q, StandoffStrategy::LoopLiftedMergeJoin, true);
        assert!(text.contains("standoff-start"), "{text}");
        assert!(text.contains("function f(x)"), "{text}");
        assert!(text.contains("call f(1 args)"), "{text}");
    }
}
