//! Plan explanation.
//!
//! Renders a **compiled, optimized plan** — the very object the
//! evaluator executes — as an indented operator tree, annotated with the
//! loop-lifting structure (which operators open new iteration scopes)
//! and, for StandOff joins, the per-operator plan decisions: the join
//! algorithm the optimizer selected, whether (and which) element-name
//! candidate sequence is pushed down, and the cardinality estimate from
//! the corpus's region-index statistics. The textual shape mirrors how
//! Pathfinder plans are usually shown.
//!
//! Because the text is generated from the plan rather than the AST, it
//! cannot drift from execution: what explain prints *is* what runs.

use std::fmt::Write as _;

use standoff_core::StandoffStrategy;

use crate::plan::*;

/// Render the optimized plan.
pub fn explain_plan(plan: &Plan) -> String {
    let mut out = String::new();
    if !plan.passes.is_empty() {
        let _ = writeln!(out, "passes: {}", plan.passes.join(" → "));
    }
    if !plan.options.is_empty() {
        out.push_str("options:\n");
        for (k, v) in &plan.options {
            let _ = writeln!(out, "  {k} = \"{v}\"");
        }
    }
    for f in &plan.functions {
        let _ = writeln!(out, "function {}({}):", f.name, f.params.join(", "));
        explain_expr(&f.body, 1, &mut out);
    }
    for (name, expr) in &plan.globals {
        let _ = writeln!(out, "global ${name} :=");
        explain_expr(expr, 1, &mut out);
    }
    out.push_str("plan:\n");
    explain_expr(&plan.body, 1, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    indent(out, depth);
    out.push_str(text);
    out.push('\n');
}

/// The annotation block of one StandOff join operator.
/// `explicit_candidates` is set for the built-in function form with a
/// second argument, which overrides any name-test pushdown at run time
/// — the note must describe the candidate source actually used.
fn standoff_note(op: &StandoffOp, explicit_candidates: bool) -> String {
    let algo = match op.strategy {
        StandoffStrategy::NaiveNoCandidates => "nested loop over all elements",
        StandoffStrategy::NaiveWithCandidates => "nested loop over candidates",
        StandoffStrategy::BasicMergeJoin => "StandOff MergeJoin per iteration (basic)",
        StandoffStrategy::LoopLiftedMergeJoin => {
            "loop-lifted StandOff MergeJoin, single index scan"
        }
    };
    // The candidate-intersection access path: when the estimate pass
    // left cardinalities, the gather-vs-scan decision the index will
    // make at run time ([`standoff_core::index::node_view_preferred`])
    // is reported here from the same cost rule.
    let access = |count: Option<u64>| match (count, &op.estimate) {
        (Some(c), Some(est)) if est.index.entries > 0 => {
            if standoff_core::index::node_view_preferred(c as usize, est.index.entries) {
                " [node-view]"
            } else {
                " [scan]"
            }
        }
        _ => "",
    };
    let cand = if explicit_candidates {
        "candidates: explicit node sequence ∩ region index".to_string()
    } else {
        match &op.pushdown {
            Some(name) => {
                let path = access(op.estimate.as_ref().and_then(|e| e.candidates));
                format!("candidates: element index '{name}' ∩ region index{path}")
            }
            None => "candidates: full region index".to_string(),
        }
    };
    let mut note = format!("{algo}; {cand}");
    // The result-sort elision is a runtime decision (it needs the actual
    // fragment count of the scope), so explain states the rule, not a
    // verdict; JoinStats reports what actually happened.
    let _ = write!(note, "; sorted-merge: elided for single-fragment scopes");
    let _ = write!(
        note,
        "; post-filter: {}",
        if op.test_guaranteed {
            "elided"
        } else {
            "self-step"
        }
    );
    if let Some(est) = &op.estimate {
        let _ = write!(
            note,
            "; est: {} region entr{}",
            est.index.entries,
            if est.index.entries == 1 { "y" } else { "ies" },
        );
        if let Some(c) = est.candidates {
            let _ = write!(note, ", ≈{c} candidate(s)");
        }
        if est.index.max_regions > 1 {
            let _ = write!(note, ", ≤{} region(s)/annotation", est.index.max_regions);
        }
    }
    note
}

fn explain_expr(expr: &PlanExpr, depth: usize, out: &mut String) {
    match expr {
        PlanExpr::Const(atom) => {
            let text = match atom {
                Atom::Integer(i) => format!("const {i}"),
                Atom::Double(d) => format!("const {d}"),
                Atom::String(s) => format!("const \"{s}\""),
                Atom::Boolean(b) => format!("const {b}()"),
            };
            line(out, depth, &text);
        }
        PlanExpr::Var(v) => line(out, depth, &format!("var ${v}")),
        PlanExpr::ContextItem => line(out, depth, "context-item"),
        PlanExpr::Sequence(items) => {
            line(out, depth, &format!("sequence [{} parts]", items.len()));
            for e in items {
                explain_expr(e, depth + 1, out);
            }
        }
        PlanExpr::Flwor {
            hoisted,
            clauses,
            where_clause,
            order_by,
            return_clause,
        } => {
            line(out, depth, "flwor");
            for (name, expr) in hoisted {
                line(
                    out,
                    depth + 1,
                    &format!("hoisted ${name} :=  -- loop-invariant, once per host iteration"),
                );
                explain_expr(expr, depth + 2, out);
            }
            for clause in clauses {
                match clause {
                    PlanClause::For { var, at, seq } => {
                        let at = at.as_ref().map(|a| format!(" at ${a}")).unwrap_or_default();
                        line(
                            out,
                            depth + 1,
                            &format!("for ${var}{at} in  -- opens a new iteration scope"),
                        );
                        explain_expr(seq, depth + 2, out);
                    }
                    PlanClause::Let { var, value } => {
                        line(out, depth + 1, &format!("let ${var} :="));
                        explain_expr(value, depth + 2, out);
                    }
                }
            }
            if let Some(w) = where_clause {
                line(out, depth + 1, "where  -- restricts the loop relation");
                explain_expr(w, depth + 2, out);
            }
            for key in order_by {
                line(
                    out,
                    depth + 1,
                    if key.descending {
                        "order by (descending)"
                    } else {
                        "order by"
                    },
                );
                explain_expr(&key.expr, depth + 2, out);
            }
            line(out, depth + 1, "return");
            explain_expr(return_clause, depth + 2, out);
        }
        PlanExpr::Quantified {
            every,
            bindings,
            satisfies,
        } => {
            line(out, depth, if *every { "every" } else { "some" });
            for (var, seq) in bindings {
                line(out, depth + 1, &format!("${var} in"));
                explain_expr(seq, depth + 2, out);
            }
            line(out, depth + 1, "satisfies");
            explain_expr(satisfies, depth + 2, out);
        }
        PlanExpr::IfThenElse {
            cond,
            then_branch,
            else_branch,
        } => {
            line(
                out,
                depth,
                "if  -- branches evaluated on split loop relations",
            );
            explain_expr(cond, depth + 1, out);
            line(out, depth, "then");
            explain_expr(then_branch, depth + 1, out);
            line(out, depth, "else");
            explain_expr(else_branch, depth + 1, out);
        }
        PlanExpr::Or(a, b) | PlanExpr::And(a, b) => {
            line(
                out,
                depth,
                if matches!(expr, PlanExpr::Or(..)) {
                    "or"
                } else {
                    "and"
                },
            );
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::Comparison(op, a, b) => {
            line(out, depth, &format!("compare {op:?}"));
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::Arith(op, a, b) => {
            line(out, depth, &format!("arith {op:?}"));
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::Range(a, b) => {
            line(out, depth, "range to");
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::Neg(e) => {
            line(out, depth, "negate");
            explain_expr(e, depth + 1, out);
        }
        PlanExpr::Union(a, b) => {
            line(out, depth, "union (doc-order dedup)");
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::Intersect(a, b) => {
            line(out, depth, "intersect (node identity)");
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::Except(a, b) => {
            line(out, depth, "except (node identity)");
            explain_expr(a, depth + 1, out);
            explain_expr(b, depth + 1, out);
        }
        PlanExpr::TreeStep {
            input,
            axis,
            test,
            predicates,
        } => {
            line(
                out,
                depth,
                &format!(
                    "step {}::{test}  [staircase join, loop-lifted]",
                    axis.as_str()
                ),
            );
            explain_step_tail(input.as_deref(), predicates, depth, out);
        }
        PlanExpr::StandoffStep {
            input,
            op,
            test,
            predicates,
        } => {
            line(
                out,
                depth,
                &format!(
                    "step {}::{test}  [{}]",
                    op.axis.as_str(),
                    standoff_note(op, false)
                ),
            );
            explain_step_tail(input.as_deref(), predicates, depth, out);
        }
        PlanExpr::PathExpr { input, step } => {
            line(out, depth, "path  -- maps rhs over lhs items");
            explain_expr(input, depth + 1, out);
            explain_expr(step, depth + 1, out);
        }
        PlanExpr::RootPath => line(out, depth, "root()"),
        PlanExpr::Filter { input, predicate } => {
            line(out, depth, "filter");
            explain_expr(input, depth + 1, out);
            line(out, depth + 1, "predicate");
            explain_expr(predicate, depth + 2, out);
        }
        PlanExpr::UdfCall { name, args, .. } => {
            line(out, depth, &format!("call {name}({} args)", args.len()));
            for a in args {
                explain_expr(a, depth + 1, out);
            }
        }
        PlanExpr::StandoffFn {
            op,
            ctx,
            candidates,
        } => {
            line(
                out,
                depth,
                &format!(
                    "standoff-join {}(..)  [{}]",
                    op.axis.as_str(),
                    standoff_note(op, candidates.is_some())
                ),
            );
            line(out, depth + 1, "context");
            explain_expr(ctx, depth + 2, out);
            if let Some(c) = candidates {
                line(out, depth + 1, "candidates");
                explain_expr(c, depth + 2, out);
            }
        }
        PlanExpr::BuiltinCall { name, args } => {
            line(out, depth, &format!("call {name}({} args)", args.len()));
            for a in args {
                explain_expr(a, depth + 1, out);
            }
        }
        PlanExpr::Constructor(c) => {
            line(
                out,
                depth,
                &format!("construct <{}>  [one element per iteration]", c.name),
            );
            for (name, _) in &c.attributes {
                line(out, depth + 1, &format!("attribute {name}"));
            }
            for part in &c.content {
                match part {
                    PlanContent::Text(t) => line(out, depth + 1, &format!("text {t:?}")),
                    PlanContent::Enclosed(e) => {
                        line(out, depth + 1, "enclosed");
                        explain_expr(e, depth + 2, out);
                    }
                    PlanContent::Element(child) => {
                        line(out, depth + 1, &format!("child <{}>", child.name));
                    }
                }
            }
        }
    }
}

fn explain_step_tail(
    input: Option<&PlanExpr>,
    predicates: &[PlanExpr],
    depth: usize,
    out: &mut String,
) {
    if let Some(input) = input {
        explain_expr(input, depth + 1, out);
    } else {
        line(out, depth + 1, "context-item");
    }
    for p in predicates {
        line(out, depth + 1, "predicate");
        explain_expr(p, depth + 2, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, PlanContext};
    use crate::engine::EngineOptions;
    use crate::parser::parse_query;

    fn explain_with(q: &str, options: &EngineOptions) -> String {
        let parsed = parse_query(q).unwrap();
        let plan = compile(&parsed, &PlanContext::bare(options)).unwrap();
        explain_plan(&plan)
    }

    #[test]
    fn explains_standoff_step_with_strategy() {
        let options = EngineOptions::default();
        let text = explain_with("//music/select-narrow::shot", &options);
        assert!(text.contains("select-narrow::shot"), "{text}");
        assert!(text.contains("loop-lifted StandOff MergeJoin"), "{text}");
        assert!(text.contains("element index 'shot'"), "{text}");

        let options = EngineOptions {
            strategy: standoff_core::StandoffStrategy::BasicMergeJoin,
            candidate_pushdown: false,
            ..EngineOptions::default()
        };
        let text = explain_with("//music/select-narrow::shot", &options);
        assert!(text.contains("per iteration (basic)"), "{text}");
        assert!(text.contains("full region index"), "{text}");
    }

    #[test]
    fn explains_flwor_scopes() {
        let text = explain_with(
            "for $x in (1,2) where $x > 1 order by $x return <r>{ $x }</r>",
            &EngineOptions::default(),
        );
        assert!(text.contains("opens a new iteration scope"), "{text}");
        assert!(text.contains("restricts the loop relation"), "{text}");
        assert!(text.contains("order by"), "{text}");
        assert!(text.contains("construct <r>"), "{text}");
    }

    #[test]
    fn explains_functions_and_options() {
        let text = explain_with(
            r#"declare option standoff-start "from";
               declare function f($x) { $x + 1 };
               f(1)"#,
            &EngineOptions::default(),
        );
        assert!(text.contains("standoff-start"), "{text}");
        assert!(text.contains("function f(x)"), "{text}");
        assert!(text.contains("call f(1 args)"), "{text}");
    }

    #[test]
    fn explains_pass_list_and_hoists() {
        let text = explain_with(
            r#"for $i in 1 to 10 return count(doc("d")//w)"#,
            &EngineOptions::default(),
        );
        assert!(
            text.starts_with("passes: const-fold → hoist-invariants"),
            "{text}"
        );
        assert!(text.contains("hoisted $#h0"), "{text}");
    }
}
