//! Query errors: parse, static and dynamic.

use std::fmt;

/// Any error raised while parsing or evaluating a query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// Syntax error with position.
    Parse {
        message: String,
        line: u32,
        column: u32,
    },
    /// Static error (unknown function, undeclared variable, bad option).
    Static(String),
    /// Dynamic (runtime) error — type mismatches, missing documents.
    Dynamic(String),
    /// An engine defect surfaced as an error instead of a crash: the
    /// batch executor converts a panic inside one query's evaluation
    /// into this, so a worker thread never takes down the pool.
    Internal(String),
    /// The query's deadline elapsed before evaluation finished. The
    /// partial result is discarded; the engine state stays reusable.
    Timeout,
    /// A resource cap tripped — result cardinality or scratch memory;
    /// the message names which. Like [`QueryError::Timeout`], a clean
    /// refusal: no partial output escapes.
    ResultLimit(String),
    /// The query was cancelled cooperatively (client gone, server
    /// draining) before evaluation finished.
    Cancelled,
    /// The server's admission queue was full and the request was shed
    /// instead of queued — back off and retry, the query itself is fine.
    Overloaded(String),
}

impl QueryError {
    pub fn parse(message: impl Into<String>, input: &str, offset: usize) -> QueryError {
        let offset = offset.min(input.len());
        let mut line = 1;
        let mut column = 1;
        for b in input.as_bytes()[..offset].iter() {
            if *b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        QueryError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    pub fn dynamic(message: impl Into<String>) -> QueryError {
        QueryError::Dynamic(message.into())
    }

    pub fn stat(message: impl Into<String>) -> QueryError {
        QueryError::Static(message.into())
    }

    pub fn internal(message: impl Into<String>) -> QueryError {
        QueryError::Internal(message.into())
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse {
                message,
                line,
                column,
            } => write!(f, "syntax error at line {line}, column {column}: {message}"),
            QueryError::Static(m) => write!(f, "static error: {m}"),
            QueryError::Dynamic(m) => write!(f, "dynamic error: {m}"),
            QueryError::Internal(m) => write!(f, "internal error: {m}"),
            QueryError::Timeout => write!(f, "query deadline exceeded"),
            QueryError::ResultLimit(m) => write!(f, "resource limit: {m}"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<standoff_core::BudgetExceeded> for QueryError {
    /// Map a tripped budget to the error the client sees. The recorded
    /// trip *reason* (not the observation site) decides the variant, so
    /// the same over-budget query fails identically across join
    /// strategies and thread counts.
    fn from(e: standoff_core::BudgetExceeded) -> Self {
        use standoff_core::BudgetExceeded::*;
        match e {
            Timeout => QueryError::Timeout,
            ResultLimit => QueryError::ResultLimit("result cardinality cap exceeded".into()),
            ScratchLimit => QueryError::ResultLimit("scratch memory cap exceeded".into()),
            Cancelled => QueryError::Cancelled,
        }
    }
}

impl From<standoff_xml::ParseError> for QueryError {
    fn from(e: standoff_xml::ParseError) -> Self {
        QueryError::Dynamic(format!("document parse failure: {e}"))
    }
}

impl From<standoff_core::StandoffError> for QueryError {
    fn from(e: standoff_core::StandoffError) -> Self {
        QueryError::Dynamic(format!("standoff annotation error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_position() {
        let e = QueryError::parse("boom", "ab\ncd", 4);
        assert_eq!(
            e,
            QueryError::Parse {
                message: "boom".into(),
                line: 2,
                column: 2
            }
        );
        assert!(e.to_string().contains("line 2"));
    }
}
