//! Abstract syntax of the XQuery subset.

use standoff_algebra::{NodeTest, TreeAxis};
use standoff_core::StandoffAxis;

/// A parsed query: prolog declarations plus the body expression.
#[derive(Clone, Debug)]
pub struct Query {
    pub prolog: Prolog,
    pub body: Expr,
}

/// Prolog declarations.
#[derive(Clone, Debug, Default)]
pub struct Prolog {
    /// `declare option name "value"` in document order.
    pub options: Vec<(String, String)>,
    /// `declare namespace p = "uri"` / `declare module ...` (recorded,
    /// names are compared lexically).
    pub namespaces: Vec<(String, String)>,
    /// `declare variable $x := expr`.
    pub variables: Vec<(String, Expr)>,
    /// `declare variable $x external` — bound via
    /// `Engine::bind_external` before execution.
    pub external_variables: Vec<String>,
    /// `declare function name($p1, $p2) { expr }`.
    pub functions: Vec<FunctionDecl>,
}

/// A user-defined function.
#[derive(Clone, Debug)]
pub struct FunctionDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Expr,
}

/// An axis in a path step: the thirteen XPath tree axes or one of the
/// paper's four StandOff axes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    Tree(TreeAxis),
    Standoff(StandoffAxis),
}

impl Axis {
    pub fn parse(name: &str) -> Option<Axis> {
        if let Some(s) = StandoffAxis::parse(name) {
            return Some(Axis::Standoff(s));
        }
        let t = match name {
            "child" => TreeAxis::Child,
            "descendant" => TreeAxis::Descendant,
            "descendant-or-self" => TreeAxis::DescendantOrSelf,
            "self" => TreeAxis::SelfAxis,
            "parent" => TreeAxis::Parent,
            "ancestor" => TreeAxis::Ancestor,
            "ancestor-or-self" => TreeAxis::AncestorOrSelf,
            "following-sibling" => TreeAxis::FollowingSibling,
            "preceding-sibling" => TreeAxis::PrecedingSibling,
            "following" => TreeAxis::Following,
            "preceding" => TreeAxis::Preceding,
            "attribute" => TreeAxis::Attribute,
            _ => return None,
        };
        Some(Axis::Tree(t))
    }
}

/// General (existential, type-coercing) vs value (singleton) comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompOp {
    // general
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // value
    ValEq,
    ValNe,
    ValLt,
    ValLe,
    ValGt,
    ValGe,
    // node identity
    Is,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
}

/// One `for`/`let` binding of a FLWOR expression.
#[derive(Clone, Debug)]
pub enum FlworClause {
    For {
        var: String,
        /// `at $pos` positional variable.
        at: Option<String>,
        seq: Expr,
    },
    Let {
        var: String,
        value: Expr,
    },
}

/// An `order by` key.
#[derive(Clone, Debug)]
pub struct OrderKey {
    pub expr: Expr,
    pub descending: bool,
}

/// Content of a direct element constructor.
#[derive(Clone, Debug)]
pub enum ConstructorContent {
    /// Literal character data.
    Text(String),
    /// `{ expr }` enclosed expression.
    Enclosed(Expr),
    /// Nested direct constructor.
    Element(Box<ElementConstructor>),
}

/// A direct element constructor `<name attr="...">...</name>`.
#[derive(Clone, Debug)]
pub struct ElementConstructor {
    pub name: String,
    /// Attribute values are sequences of literal text and enclosed
    /// expressions, concatenated.
    pub attributes: Vec<(String, Vec<ConstructorContent>)>,
    pub content: Vec<ConstructorContent>,
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Literal atomic value.
    IntLit(i64),
    DoubleLit(f64),
    StringLit(String),
    /// `$x`
    VarRef(String),
    /// `.`
    ContextItem,
    /// `()` or `(e1, e2, ...)` — sequence construction.
    Sequence(Vec<Expr>),
    /// FLWOR.
    Flwor {
        clauses: Vec<FlworClause>,
        where_clause: Option<Box<Expr>>,
        order_by: Vec<OrderKey>,
        return_clause: Box<Expr>,
    },
    /// `some`/`every` $v in S satisfies P.
    Quantified {
        every: bool,
        bindings: Vec<(String, Expr)>,
        satisfies: Box<Expr>,
    },
    IfThenElse {
        cond: Box<Expr>,
        then_branch: Box<Expr>,
        else_branch: Box<Expr>,
    },
    Or(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Comparison(CompOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `a to b`
    Range(Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `e1 | e2` — node sequence union.
    Union(Box<Expr>, Box<Expr>),
    /// `e1 intersect e2` — node sequence intersection (by identity).
    Intersect(Box<Expr>, Box<Expr>),
    /// `e1 except e2` — node sequence difference (by identity).
    Except(Box<Expr>, Box<Expr>),
    /// Path step: `input/axis::test[preds]`. `input = None` means the step
    /// applies to the context item (a relative path's first step).
    Step {
        input: Option<Box<Expr>>,
        axis: Axis,
        test: NodeTest,
        predicates: Vec<Expr>,
    },
    /// `input/expr` where expr is not an axis step (e.g. `a/count(.)`).
    PathExpr {
        input: Box<Expr>,
        step: Box<Expr>,
    },
    /// `/...` or `/` alone: navigate from the context node's document
    /// root.
    RootPath(Option<Box<Expr>>),
    /// Postfix predicate on an arbitrary expression: `E[p]`.
    Filter {
        input: Box<Expr>,
        predicate: Box<Expr>,
    },
    /// Function call (built-in or user-defined, resolved at evaluation).
    FunctionCall {
        name: String,
        args: Vec<Expr>,
    },
    /// Direct element constructor.
    Constructor(ElementConstructor),
}

impl Expr {
    /// An empty sequence literal.
    pub fn empty() -> Expr {
        Expr::Sequence(Vec::new())
    }
}
