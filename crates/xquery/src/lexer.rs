//! XQuery lexer.
//!
//! Produces a token stream for the parser. XQuery keywords are contextual
//! (`for` is a legal element name), so the lexer emits identifiers and the
//! parser decides keyword-ness; only punctuation and literals are
//! classified here. Comments `(: ... :)` nest and are skipped.

use crate::error::QueryError;

/// A lexical token with its source offset (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// NCName or QName (`foo`, `xs:integer`, `select-narrow`).
    Name(String),
    /// `$name`
    Variable(String),
    /// String literal, quotes removed, entities decoded.
    Str(String),
    /// Integer literal.
    Integer(i64),
    /// Decimal/double literal.
    Double(f64),
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Slash,
    DoubleSlash,
    Dot,
    DotDot,
    At,
    ColonColon,
    ColonEq,
    Star,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Pipe,
    Question,
    /// `<` directly followed by a name: start of a direct constructor.
    /// The lexer cannot decide this context-freely, so the parser re-lexes
    /// constructors from the raw input; this token never appears in the
    /// stream (see `Lexer::lex_all`).
    TagOpen,
    Eof,
}

impl TokenKind {
    /// Is this token the given name keyword?
    pub fn is_name(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Name(n) if n == kw)
    }
}

/// Lexer state. The parser drives it token-by-token and can switch to raw
/// mode when it sees the start of a direct element constructor.
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset (used by the parser to re-lex constructors).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Reposition (after the parser consumed raw constructor text).
    pub fn seek(&mut self, offset: usize) {
        self.pos = offset;
    }

    pub fn error(&self, msg: impl Into<String>, offset: usize) -> QueryError {
        QueryError::parse(msg, self.input, offset)
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    /// Skip whitespace and (nested) comments.
    pub fn skip_trivia(&mut self) -> Result<(), QueryError> {
        loop {
            match self.peek_byte() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'(') if self.peek2() == Some(b':') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 {
                        match (self.peek_byte(), self.peek2()) {
                            (Some(b'('), Some(b':')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b':'), Some(b')')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(self.error("unterminated comment", start));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lex the next token.
    pub fn next_token(&mut self) -> Result<Token, QueryError> {
        self.skip_trivia()?;
        let offset = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match b {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'[' => {
                self.pos += 1;
                TokenKind::LBracket
            }
            b']' => {
                self.pos += 1;
                TokenKind::RBracket
            }
            b'{' => {
                self.pos += 1;
                TokenKind::LBrace
            }
            b'}' => {
                self.pos += 1;
                TokenKind::RBrace
            }
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'?' => {
                self.pos += 1;
                TokenKind::Question
            }
            b'|' => {
                self.pos += 1;
                TokenKind::Pipe
            }
            b'@' => {
                self.pos += 1;
                TokenKind::At
            }
            b'+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'!' if self.peek2() == Some(b'=') => {
                self.pos += 2;
                TokenKind::Ne
            }
            b'<' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Le
                } else {
                    // `<` beginning a direct constructor is handled by the
                    // parser, which inspects the following byte itself.
                    self.pos += 1;
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Ge
                } else {
                    self.pos += 1;
                    TokenKind::Gt
                }
            }
            b'/' => {
                if self.peek2() == Some(b'/') {
                    self.pos += 2;
                    TokenKind::DoubleSlash
                } else {
                    self.pos += 1;
                    TokenKind::Slash
                }
            }
            b'.' => {
                if self.peek2() == Some(b'.') {
                    self.pos += 2;
                    TokenKind::DotDot
                } else if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    return self.lex_number(offset);
                } else {
                    self.pos += 1;
                    TokenKind::Dot
                }
            }
            b':' => {
                if self.peek2() == Some(b':') {
                    self.pos += 2;
                    TokenKind::ColonColon
                } else if self.peek2() == Some(b'=') {
                    self.pos += 2;
                    TokenKind::ColonEq
                } else {
                    return Err(self.error("unexpected ':'", offset));
                }
            }
            b'$' => {
                self.pos += 1;
                let name = self.lex_qname(offset)?;
                TokenKind::Variable(name)
            }
            b'"' | b'\'' => return self.lex_string(offset),
            b'0'..=b'9' => return self.lex_number(offset),
            _ if is_name_start(b) => {
                let name = self.lex_qname(offset)?;
                TokenKind::Name(name)
            }
            other => {
                return Err(self.error(format!("unexpected character '{}'", other as char), offset))
            }
        };
        Ok(Token { kind, offset })
    }

    /// QName: NCName (":" NCName)?  — hyphens allowed (axis names like
    /// `select-narrow` rely on this; `a -b` needs the space, as in XQuery).
    fn lex_qname(&mut self, offset: usize) -> Result<String, QueryError> {
        let start = self.pos;
        if !self.peek_byte().is_some_and(is_name_start) {
            return Err(self.error("expected a name", offset));
        }
        self.pos += 1;
        while self.peek_byte().is_some_and(is_name_char) {
            self.pos += 1;
        }
        // Optional prefix:local — only if followed directly by a name
        // start (avoid eating `::`).
        if self.peek_byte() == Some(b':')
            && self.peek2().is_some_and(is_name_start)
            && self.bytes.get(self.pos + 1) != Some(&b':')
        {
            self.pos += 1; // ':'
            while self.peek_byte().is_some_and(is_name_char) {
                self.pos += 1;
            }
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn lex_string(&mut self, offset: usize) -> Result<Token, QueryError> {
        let quote = self.bytes[self.pos];
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek_byte() {
                None => return Err(self.error("unterminated string literal", offset)),
                Some(b) if b == quote => {
                    // XQuery escapes quotes by doubling.
                    if self.peek2() == Some(quote) {
                        out.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(b'&') => {
                    // Predefined entity references inside literals.
                    let rest = &self.input[self.pos..];
                    let semi = rest
                        .find(';')
                        .ok_or_else(|| self.error("unterminated entity in string", offset))?;
                    match &rest[1..semi] {
                        "lt" => out.push('<'),
                        "gt" => out.push('>'),
                        "amp" => out.push('&'),
                        "quot" => out.push('"'),
                        "apos" => out.push('\''),
                        other => {
                            return Err(self.error(format!("unknown entity &{other};"), offset))
                        }
                    }
                    self.pos += semi + 1;
                }
                Some(_) => {
                    // Defensive decode: never index the input at a
                    // position we cannot prove is a char boundary — a
                    // truncated or garbage query must produce a lex
                    // error, not a panic.
                    let Some(c) = self
                        .input
                        .get(self.pos..)
                        .and_then(|rest| rest.chars().next())
                    else {
                        return Err(self.error("malformed string literal", offset));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Ok(Token {
            kind: TokenKind::Str(out),
            offset,
        })
    }

    fn lex_number(&mut self, offset: usize) -> Result<Token, QueryError> {
        let start = self.pos;
        while self.peek_byte().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek_byte() == Some(b'.') && self.peek2().is_none_or(|b| b != b'.') {
            is_double = true;
            self.pos += 1;
            while self.peek_byte().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek_byte(), Some(b'e' | b'E')) {
            is_double = true;
            self.pos += 1;
            if matches!(self.peek_byte(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek_byte().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        let kind = if is_double {
            TokenKind::Double(
                text.parse()
                    .map_err(|_| self.error(format!("bad number '{text}'"), offset))?,
            )
        } else {
            TokenKind::Integer(
                text.parse()
                    .map_err(|_| self.error(format!("bad number '{text}'"), offset))?,
            )
        };
        Ok(Token { kind, offset })
    }
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

#[inline]
fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(input: &str) -> Vec<TokenKind> {
        let mut l = Lexer::new(input);
        let mut out = Vec::new();
        loop {
            let t = l.next_token().unwrap();
            let eof = t.kind == TokenKind::Eof;
            out.push(t.kind);
            if eof {
                break;
            }
        }
        out.pop();
        out
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            lex("( ) [ ] { } , ; / // . .. @ :: := * + - = != < <= > >= |"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Comma,
                TokenKind::Semicolon,
                TokenKind::Slash,
                TokenKind::DoubleSlash,
                TokenKind::Dot,
                TokenKind::DotDot,
                TokenKind::At,
                TokenKind::ColonColon,
                TokenKind::ColonEq,
                TokenKind::Star,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Pipe,
            ]
        );
    }

    #[test]
    fn hyphenated_axis_names_are_single_tokens() {
        assert_eq!(
            lex("select-narrow::shot"),
            vec![
                TokenKind::Name("select-narrow".into()),
                TokenKind::ColonColon,
                TokenKind::Name("shot".into()),
            ]
        );
    }

    #[test]
    fn qnames_with_prefix() {
        assert_eq!(
            lex("xs:integer"),
            vec![TokenKind::Name("xs:integer".into())]
        );
        // but not across `::`
        assert_eq!(
            lex("child::a"),
            vec![
                TokenKind::Name("child".into()),
                TokenKind::ColonColon,
                TokenKind::Name("a".into()),
            ]
        );
    }

    #[test]
    fn variables() {
        assert_eq!(
            lex("$b $seq-two"),
            vec![
                TokenKind::Variable("b".into()),
                TokenKind::Variable("seq-two".into()),
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            lex(r#""he said ""hi""" 'don''t' "&amp;&lt;""#),
            vec![
                TokenKind::Str("he said \"hi\"".into()),
                TokenKind::Str("don't".into()),
                TokenKind::Str("&<".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("42 3.5 1e3 .5"),
            vec![
                TokenKind::Integer(42),
                TokenKind::Double(3.5),
                TokenKind::Double(1000.0),
                TokenKind::Double(0.5),
            ]
        );
    }

    #[test]
    fn nested_comments_are_skipped() {
        assert_eq!(
            lex("1 (: outer (: inner :) still out :) 2"),
            vec![TokenKind::Integer(1), TokenKind::Integer(2)]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let mut l = Lexer::new("(: open");
        assert!(l.next_token().is_err());
    }

    #[test]
    fn range_vs_decimal() {
        // `1 to 3` must not lex `1.` — ".." handling
        assert_eq!(
            lex("(1 to 3)"),
            vec![
                TokenKind::LParen,
                TokenKind::Integer(1),
                TokenKind::Name("to".into()),
                TokenKind::Integer(3),
                TokenKind::RParen,
            ]
        );
    }
}
