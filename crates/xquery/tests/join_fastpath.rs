//! The join hot path's fast-path *mechanisms*, asserted directly.
//!
//! Timing can lie on a loaded CI box; [`JoinStats`] counters cannot.
//! These tests pin that a pushdown-guaranteed StandOff step really skips
//! the trailing self-axis pass and the result sort in the single-
//! fragment case, that the literal paths still run where required (no
//! pushdown, naive strategies, the unoptimized reference lowering), and
//! that the elided paths stay observably equivalent to the reference on
//! randomized region workloads across all four axes.

use proptest::prelude::*;

use standoff_core::StandoffStrategy;
use standoff_xquery::{Engine, EngineOptions, JoinStats};

fn region_engine(xml: &str, options: EngineOptions) -> Engine {
    let mut engine = Engine::with_options(options);
    engine.load_document("d.xml", xml).unwrap();
    engine
}

const FIXTURE: &str = r#"<doc>
  <w start="0" end="5"/><w start="6" end="11"/><w start="12" end="22"/>
  <place start="0" end="11"/><place start="12" end="29"/>
  <w start="23" end="29"/>
</doc>"#;

/// A pushdown-guaranteed step: no trailing self-axis pass, no result
/// sort — asserted via the runtime counters, not timing.
#[test]
fn pushdown_guaranteed_step_elides_post_filter_and_sort() {
    let mut engine = region_engine(FIXTURE, EngineOptions::default());
    let result = engine
        .run(r#"count(doc("d.xml")//place/select-narrow::w)"#)
        .unwrap();
    assert_eq!(result.as_strings(), ["4"]);
    let stats = engine.join_stats();
    assert!(stats.post_filters_elided > 0, "{stats:?}");
    assert_eq!(stats.post_filters, 0, "{stats:?}");
    assert!(stats.result_sorts_elided > 0, "{stats:?}");
    assert_eq!(stats.result_sorts, 0, "{stats:?}");
}

/// A kind-only test (`node()`, `*`) is guaranteed too — join output is
/// always elements.
#[test]
fn kind_only_tests_elide_post_filter() {
    for test in ["node()", "*"] {
        let mut engine = region_engine(FIXTURE, EngineOptions::default());
        engine
            .run(&format!(r#"doc("d.xml")//place/select-wide::{test}"#))
            .unwrap();
        let stats = engine.join_stats();
        assert!(stats.post_filters_elided > 0, "{test}: {stats:?}");
        assert_eq!(stats.post_filters, 0, "{test}: {stats:?}");
    }
}

/// Without pushdown the name test is *not* guaranteed: the trailing
/// self-step must run (it is what enforces the name).
#[test]
fn no_pushdown_keeps_post_filter() {
    let mut engine = region_engine(
        FIXTURE,
        EngineOptions {
            candidate_pushdown: false,
            ..EngineOptions::default()
        },
    );
    let with_filter = engine
        .run(r#"count(doc("d.xml")//place/select-narrow::w)"#)
        .unwrap();
    assert_eq!(with_filter.as_strings(), ["4"]);
    let stats = engine.join_stats();
    assert!(stats.post_filters > 0, "{stats:?}");
    assert_eq!(stats.post_filters_elided, 0, "{stats:?}");
}

/// The unoptimized reference lowering never sets the elision flag: it
/// keeps the literal trailing self-step, and still agrees byte-for-byte.
#[test]
fn reference_path_keeps_literal_post_filter() {
    let mut engine = region_engine(FIXTURE, EngineOptions::default());
    let query = r#"doc("d.xml")//place/select-narrow::w"#;
    let optimized = engine.run(query).unwrap();
    let stats_opt = engine.join_stats();
    engine.reset_join_stats();
    let reference = engine.run_unoptimized(query).unwrap();
    let stats_ref = engine.join_stats();
    assert_eq!(optimized.as_serialized(), reference.as_serialized());
    assert_eq!(stats_opt.post_filters, 0);
    assert!(stats_ref.post_filters > 0, "{stats_ref:?}");
    assert_eq!(stats_ref.post_filters_elided, 0, "{stats_ref:?}");
}

/// The candidate-intersection path counters reflect the cost model:
/// sparse pushdown takes the node view, no pushdown takes no
/// intersection at all.
#[test]
fn candidate_access_path_counters() {
    // 1 `place` candidate over a 301-entry index: node view.
    let mut xml = String::from("<doc>");
    for k in 0..300 {
        xml.push_str(&format!(r#"<w start="{}" end="{}"/>"#, k * 10, k * 10 + 5));
    }
    xml.push_str(r#"<place start="0" end="95"/></doc>"#);
    let mut engine = region_engine(&xml, EngineOptions::default());
    engine
        .run(r#"count(doc("d.xml")//w[1]/select-wide::place)"#)
        .unwrap();
    let stats = engine.join_stats();
    assert!(stats.candidate_node_view > 0, "{stats:?}");

    // 300 `w` candidates over the same index: scan.
    engine.reset_join_stats();
    engine
        .run(r#"count(doc("d.xml")//place/select-wide::w)"#)
        .unwrap();
    let stats = engine.join_stats();
    assert!(stats.candidate_scans > 0, "{stats:?}");
}

/// Multi-layer joins (context and candidates in sibling layers) still
/// take the sorting merge — the elision is strictly single-fragment.
#[test]
fn cross_document_context_does_not_elide_sort() {
    let mut engine = Engine::new();
    engine
        .load_document(
            "tokens.xml",
            r#"<tokens><w start="0" end="5"/><w start="6" end="11"/></tokens>"#,
        )
        .unwrap();
    engine
        .load_document(
            "entities.xml",
            r#"<entities><place start="0" end="11"/></entities>"#,
        )
        .unwrap();
    // Two documents in one context sequence → two join units.
    engine
        .run(
            r#"count((doc("tokens.xml")//w, doc("entities.xml")//place)
                 /select-wide::node())"#,
        )
        .unwrap();
    let stats = engine.join_stats();
    assert!(stats.result_sorts > 0, "{stats:?}");
}

/// Generated region workloads × all four axes × pushdown on/off: the
/// optimized pipeline (sort elision, post-filter elision, node-view
/// candidates, shared scratch) agrees byte-for-byte with both the
/// unoptimized reference lowering and the naive-with-candidates oracle
/// strategy.
fn doc_xml(regions: &[(u8, i64, i64)]) -> String {
    let mut xml = String::from("<doc>");
    for &(name_pick, start, len) in regions {
        let name = ["w", "place", "thing"][name_pick as usize % 3];
        xml.push_str(&format!(
            r#"<{name} start="{start}" end="{}"/>"#,
            start + len
        ));
    }
    xml.push_str("</doc>");
    xml
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_workloads_agree_through_all_fast_paths(
        regions in prop::collection::vec((0u8..3, 0i64..120, 0i64..40), 1..24),
        pushdown in any::<bool>(),
    ) {
        let xml = doc_xml(&regions);
        let mk = |strategy| {
            region_engine(&xml, EngineOptions {
                strategy,
                candidate_pushdown: pushdown,
                ..EngineOptions::default()
            })
        };
        let mut fast = mk(StandoffStrategy::LoopLiftedMergeJoin);
        let mut oracle = mk(StandoffStrategy::NaiveWithCandidates);
        for axis in ["select-narrow", "select-wide", "reject-narrow", "reject-wide"] {
            for test in ["w", "*", "node()"] {
                let query =
                    format!(r#"doc("d.xml")//place/{axis}::{test}"#);
                let a = fast.run(&query).unwrap();
                let b = fast.run_unoptimized(&query).unwrap();
                let c = oracle.run(&query).unwrap();
                prop_assert_eq!(
                    a.as_serialized(), b.as_serialized(),
                    "optimized vs reference: {}", query);
                prop_assert_eq!(
                    a.as_serialized(), c.as_serialized(),
                    "loop-lifted vs naive oracle: {}", query);
            }
        }
        // The fast engine really exercised the elision branches.
        let stats = fast.join_stats();
        prop_assert!(stats.post_filters_elided > 0, "{:?}", stats);
        prop_assert!(stats.result_sorts_elided > 0, "{:?}", stats);
    }
}

/// `JoinStats` is exported and mergeable — the shape the bench harness
/// and doc examples rely on.
#[test]
fn join_stats_merge() {
    let mut a = JoinStats {
        post_filters_elided: 1,
        result_sorts: 2,
        ..JoinStats::default()
    };
    a.merge(JoinStats {
        post_filters_elided: 2,
        candidate_node_view: 5,
        ..JoinStats::default()
    });
    assert_eq!(a.post_filters_elided, 3);
    assert_eq!(a.result_sorts, 2);
    assert_eq!(a.candidate_node_view, 5);
}
