//! StandOff-specific engine semantics: fragment partitioning, the
//! configurable representation through the full query path, strategy
//! equivalence on adversarial region layouts, and the built-in function
//! forms.

use standoff_core::StandoffStrategy;
use standoff_xquery::{Engine, EngineOptions};

/// Two documents with identical structure: joins must never match across
/// fragments (§3.2: "only return matches from the same XML fragment").
#[test]
fn joins_respect_fragment_boundaries() {
    let mut e = Engine::new();
    e.load_document(
        "a.xml",
        r#"<d><big start="0" end="100"/><x id="ax" start="10" end="20"/></d>"#,
    )
    .unwrap();
    e.load_document(
        "b.xml",
        r#"<d><big start="0" end="100"/><x id="bx" start="10" end="20"/></d>"#,
    )
    .unwrap();
    // Context from document a only: must select only a's x.
    let r = e.run(r#"doc("a.xml")//big/select-narrow::x/@id"#).unwrap();
    assert_eq!(r.as_strings(), ["ax"]);
    // Context from both: each fragment contributes its own matches.
    let r = e
        .run(r#"(doc("a.xml")//big | doc("b.xml")//big)/select-narrow::x/@id"#)
        .unwrap();
    assert_eq!(r.as_strings(), ["ax", "bx"]);
    // Function form with candidates from the *other* document: no
    // matches — root($p) differs from root($q).
    let r = e
        .run(r#"select-narrow(doc("a.xml")//big, doc("b.xml")//x)"#)
        .unwrap();
    assert!(r.is_empty());
}

/// Rejects complement per fragment: an empty-selection context still
/// rejects all candidates *of its own fragment* only.
#[test]
fn reject_domain_is_per_fragment() {
    let mut e = Engine::new();
    e.load_document(
        "a.xml",
        r#"<d><big start="0" end="5"/><x id="ax" start="50" end="60"/></d>"#,
    )
    .unwrap();
    e.load_document(
        "b.xml",
        r#"<d><big start="0" end="5"/><x id="bx" start="50" end="60"/></d>"#,
    )
    .unwrap();
    let r = e.run(r#"doc("a.xml")//big/reject-narrow::x/@id"#).unwrap();
    assert_eq!(r.as_strings(), ["ax"], "only fragment a's candidates");
}

/// The same query under all strategies on a layout full of edge cases:
/// identical regions, shared endpoints, fully nested chains, zero-width
/// regions.
#[test]
fn adversarial_layout_strategy_equivalence() {
    let doc = r#"<d>
        <c id="c1" start="0" end="100"/>
        <c id="c2" start="0" end="100"/>
        <c id="c3" start="10" end="10"/>
        <t id="t1" start="0" end="100"/>
        <t id="t2" start="100" end="100"/>
        <t id="t3" start="0" end="0"/>
        <t id="t4" start="10" end="10"/>
        <t id="t5" start="99" end="101"/>
    </d>"#;
    let mut reference: Option<Vec<Vec<String>>> = None;
    for strategy in StandoffStrategy::ALL {
        let mut e = Engine::with_options(EngineOptions {
            strategy,
            ..Default::default()
        });
        e.load_document("d.xml", doc).unwrap();
        let mut results = Vec::new();
        for axis in [
            "select-narrow",
            "select-wide",
            "reject-narrow",
            "reject-wide",
        ] {
            let r = e.run(&format!(r#"doc("d.xml")//c/{axis}::t/@id"#)).unwrap();
            results.push(r.as_strings().to_vec());
        }
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(&results, r, "strategy {strategy} diverges"),
        }
    }
    let r = reference.unwrap();
    // Sanity anchors: t1 equals c1/c2 exactly → contained; t5 straddles
    // the end → overlap only; t3 at position 0 is inside [0,100].
    assert!(r[0].contains(&"t1".to_string()), "narrow: {:?}", r[0]);
    assert!(r[0].contains(&"t3".to_string()));
    assert!(!r[0].contains(&"t5".to_string()));
    assert!(r[1].contains(&"t5".to_string()), "wide: {:?}", r[1]);
    assert!(r[3].is_empty(), "everything overlaps some c: {:?}", r[3]);
}

/// A context annotation that satisfies its own name test selects itself
/// under select-narrow (contains is reflexive) — the subtle difference
/// from the descendant axis.
#[test]
fn select_narrow_is_reflexive_unlike_descendant() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><w id="outer" start="0" end="10"/><w id="inner" start="2" end="8"/></d>"#,
    )
    .unwrap();
    let r = e
        .run(r#"doc("d.xml")//w[@id = "outer"]/select-narrow::w/@id"#)
        .unwrap();
    assert_eq!(
        r.as_strings(),
        ["outer", "inner"],
        "self is contained in self"
    );
}

/// Custom names and the element representation, end to end with rejects.
#[test]
fn element_representation_with_custom_names() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        "<d>\
           <span id=\"host\"><piece><from>0</from><upto>9</upto></piece>\
                             <piece><from>20</from><upto>29</upto></piece></span>\
           <span id=\"in1\"><piece><from>2</from><upto>4</upto></piece></span>\
           <span id=\"split\"><piece><from>5</from><upto>7</upto></piece>\
                              <piece><from>22</from><upto>24</upto></piece></span>\
           <span id=\"gap\"><piece><from>12</from><upto>15</upto></piece></span>\
           <span id=\"partial\"><piece><from>8</from><upto>21</upto></piece></span>\
         </d>",
    )
    .unwrap();
    let prolog = r#"
        declare option standoff-region "piece";
        declare option standoff-start "from";
        declare option standoff-end "upto";
    "#;
    let narrow = e
        .run(&format!(
            r#"{prolog} doc("d.xml")//span[@id = "host"]/select-narrow::span/@id"#
        ))
        .unwrap();
    assert_eq!(narrow.as_strings(), ["host", "in1", "split"]);
    let wide = e
        .run(&format!(
            r#"{prolog} doc("d.xml")//span[@id = "host"]/select-wide::span/@id"#
        ))
        .unwrap();
    assert_eq!(wide.as_strings(), ["host", "in1", "split", "partial"]);
    let reject_wide = e
        .run(&format!(
            r#"{prolog} doc("d.xml")//span[@id = "host"]/reject-wide::span/@id"#
        ))
        .unwrap();
    assert_eq!(reject_wide.as_strings(), ["gap"]);
}

/// Malformed annotations: strict mode fails the query, lenient mode
/// skips them.
#[test]
fn strict_vs_lenient_annotation_errors() {
    let xml = r#"<d><ok start="0" end="9"/><bad start="5"/></d>"#;
    let mut e = Engine::new();
    e.load_document("d.xml", xml).unwrap();
    let err = e.run(r#"doc("d.xml")//ok/select-wide::*"#).unwrap_err();
    assert!(err.to_string().contains("only one of"), "{err}");
    let ok = e
        .run(r#"declare option standoff-lenient "true"; doc("d.xml")//ok/select-wide::*"#)
        .unwrap();
    assert_eq!(ok.len(), 1, "the ok annotation overlaps itself");
}

/// The region index is cached per (document, configuration): two
/// configurations on the same document see different annotations.
#[test]
fn per_configuration_indices() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><a start="0" end="10" from="90" to="95"/>
              <b start="2" end="8"/><b from="91" to="93"/></d>"#,
    )
    .unwrap();
    // Default names: a [0,10] contains the first b [2,8].
    let r = e.run(r#"count(doc("d.xml")//a/select-narrow::b)"#).unwrap();
    assert_eq!(r.as_strings(), ["1"]);
    // Alternate names: a [90,95] contains the second b [91,93].
    let r = e
        .run(
            r#"declare option standoff-start "from";
               declare option standoff-end "to";
               count(doc("d.xml")//a/select-narrow::b)"#,
        )
        .unwrap();
    assert_eq!(r.as_strings(), ["1"]);
}

/// Wildcard standoff steps (no name test → no candidate pushdown) work
/// and match the restricted form unioned over names.
#[test]
fn wildcard_standoff_step() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><big start="0" end="50"/><p start="5" end="9"/><q start="20" end="30"/></d>"#,
    )
    .unwrap();
    let all = e
        .run(r#"for $n in doc("d.xml")//big/select-narrow::* return name($n)"#)
        .unwrap();
    assert_eq!(all.as_strings(), ["big", "p", "q"]);
}

/// Standoff steps from an attribute-node context use the owner element's
/// annotation (attributes pin the fragment but have no regions).
#[test]
fn attribute_context_contributes_owner() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><big id="B" start="0" end="50"/><p start="5" end="9"/></d>"#,
    )
    .unwrap();
    let r = e
        .run(r#"count(doc("d.xml")//big/@id/select-narrow::p)"#)
        .unwrap();
    assert_eq!(r.as_strings(), ["1"]);
}
