//! Deeper evaluator coverage: constructors with attribute-node content,
//! multi-key ordering, positional variables under restriction, and path
//! expressions with non-step right-hand sides.

use standoff_xquery::Engine;

fn run(e: &mut Engine, q: &str) -> Vec<String> {
    e.run(q)
        .unwrap_or_else(|err| panic!("query failed: {err}\n{q}"))
        .as_strings()
        .to_vec()
}

#[test]
fn attribute_nodes_in_constructor_become_attributes() {
    let mut e = Engine::new();
    e.load_document("d.xml", r#"<d><p id="p1" role="admin"/></d>"#)
        .unwrap();
    let r = e.run(r#"<copy>{ doc("d.xml")//p/@id }</copy>"#).unwrap();
    assert_eq!(r.as_xml(), r#"<copy id="p1"/>"#);
    // Multiple attributes, then element content.
    let r = e
        .run(r#"<copy>{ doc("d.xml")//p/@id }{ doc("d.xml")//p/@role }<inner/></copy>"#)
        .unwrap();
    assert_eq!(r.as_xml(), r#"<copy id="p1" role="admin"><inner/></copy>"#);
}

#[test]
fn deep_node_copy_into_constructor() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><tree a="1">text<leaf b="2"/><!--c--><?p i?></tree></d>"#,
    )
    .unwrap();
    let r = e.run(r#"<wrap>{ doc("d.xml")//tree }</wrap>"#).unwrap();
    assert_eq!(
        r.as_xml(),
        r#"<wrap><tree a="1">text<leaf b="2"/><!--c--><?p i?></tree></wrap>"#
    );
}

#[test]
fn document_node_content_copies_children() {
    let mut e = Engine::new();
    e.load_document("d.xml", "<root><x/></root>").unwrap();
    let r = e.run(r#"<wrap>{ doc("d.xml") }</wrap>"#).unwrap();
    assert_eq!(r.as_xml(), "<wrap><root><x/></root></wrap>");
}

#[test]
fn multi_key_order_by() {
    let mut e = Engine::new();
    let q = r#"
        for $p in (
            <p a="2" b="x"/>, <p a="1" b="y"/>, <p a="2" b="a"/>, <p a="1" b="b"/>
        )
        order by $p/@a, $p/@b descending
        return concat($p/@a, $p/@b)"#;
    assert_eq!(run(&mut e, q), ["1y", "1b", "2x", "2a"]);
}

#[test]
fn order_by_with_empty_keys() {
    let mut e = Engine::new();
    let q = r#"
        for $p in (<p/>, <p k="1"/>, <p k="0"/>)
        order by $p/@k
        return count($p/@k)"#;
    // Empty key sorts least: the key-less element first.
    assert_eq!(run(&mut e, q), ["0", "1", "1"]);
}

#[test]
fn positional_variable_with_where() {
    let mut e = Engine::new();
    let q = r#"
        for $x at $i in ("a", "b", "c", "d")
        where $i mod 2 = 0
        return concat($i, $x)"#;
    assert_eq!(run(&mut e, q), ["2b", "4d"]);
}

#[test]
fn nested_flwor_with_let_of_sequences() {
    let mut e = Engine::new();
    let q = r#"
        for $x in (1, 2)
        let $ys := for $y in (10, 20) return $x * $y
        return sum($ys)"#;
    assert_eq!(run(&mut e, q), ["30", "60"]);
}

#[test]
fn path_expr_with_function_rhs() {
    let mut e = Engine::new();
    e.load_document("d.xml", "<d><x>alpha</x><x>be</x></d>")
        .unwrap();
    // rhs is a general expression evaluated with `.` bound per node.
    let q = r#"doc("d.xml")//x/string-length(.)"#;
    assert_eq!(run(&mut e, q), ["5", "2"]);
}

#[test]
fn predicates_with_last_and_arithmetic() {
    let mut e = Engine::new();
    e.load_document("d.xml", "<d><x/><x/><x/><x/></d>").unwrap();
    assert_eq!(run(&mut e, r#"count(doc("d.xml")//x[last()])"#), ["1"]);
    assert_eq!(
        run(&mut e, r#"count(doc("d.xml")//x[position() = last() - 1])"#),
        ["1"]
    );
    assert_eq!(
        run(
            &mut e,
            r#"count(doc("d.xml")//x[position() > 1][position() < 3])"#
        ),
        ["2"],
        "stacked predicates renumber positions: x2..x4 then first two"
    );
}

#[test]
fn filter_on_sequence_with_predicate_chain() {
    let mut e = Engine::new();
    assert_eq!(run(&mut e, "(11 to 20)[. mod 3 = 0]"), ["12", "15", "18"]);
    assert_eq!(run(&mut e, "(11 to 20)[3]"), ["13"]);
    assert_eq!(run(&mut e, "((11 to 20)[. mod 3 = 0])[last()]"), ["18"]);
}

#[test]
fn constructor_attribute_value_joins_sequence() {
    let mut e = Engine::new();
    let r = e.run(r#"<r v="{ (1, 2, 3) }"/>"#).unwrap();
    assert_eq!(r.as_xml(), r#"<r v="1 2 3"/>"#);
    let r = e.run(r#"<r v="a{ 1 + 1 }b"/>"#).unwrap();
    assert_eq!(r.as_xml(), r#"<r v="a2b"/>"#);
}

#[test]
fn serialize_builtin() {
    let mut e = Engine::new();
    e.load_document("d.xml", "<d><x a='1'/></d>").unwrap();
    assert_eq!(
        run(&mut e, r#"serialize(doc("d.xml")//x)"#),
        [r#"<x a="1"/>"#]
    );
}

#[test]
fn distinct_values_numeric_coercion() {
    let mut e = Engine::new();
    // 1 and 1.0 compare equal under general comparison.
    assert_eq!(run(&mut e, "count(distinct-values((1, 1.0, 2)))"), ["2"]);
}

#[test]
fn constructed_nodes_are_queryable() {
    let mut e = Engine::new();
    // Navigate into freshly constructed elements.
    let q = r#"
        let $doc := <shots><shot len="8"/><shot len="56"/></shots>
        return sum($doc/shot/@len)"#;
    assert_eq!(run(&mut e, q), ["64"]);
}

#[test]
fn standoff_join_on_constructed_document() {
    let mut e = Engine::new();
    // Constructed elements carry start/end attributes: the joins work on
    // them too (a fresh region index is built for the constructed doc).
    let q = r#"
        let $d := <track>
                    <span id="host" start="0" end="9"/>
                    <span id="in" start="2" end="5"/>
                  </track>
        return $d/span[@id = "host"]/select-narrow::span/@id"#;
    assert_eq!(run(&mut e, q), ["host", "in"]);
}
