//! End-to-end multi-layer store integration: several annotation layers
//! mounted over one base document, with StandOff axes, builtins and
//! rejects running *across* layers — under every evaluation strategy.

use standoff_core::{StandoffConfig, StandoffStrategy};
use standoff_store::{read_snapshot, write_snapshot, LayerSet};
use standoff_xml::parse_document;
use standoff_xquery::Engine;

/// BLOB: "Alice met Bob in Paris yesterday" (coordinates are character
/// offsets into an external text the layers never materialize).
fn corpus() -> LayerSet {
    let base =
        parse_document(r#"<text lang="en">Alice met Bob in Paris yesterday</text>"#).unwrap();
    let tokens = parse_document(
        r#"<tokens>
             <w word="Alice" start="0" end="4"/>
             <w word="met" start="6" end="8"/>
             <w word="Bob" start="10" end="12"/>
             <w word="in" start="14" end="15"/>
             <w word="Paris" start="17" end="21"/>
             <w word="yesterday" start="23" end="31"/>
           </tokens>"#,
    )
    .unwrap();
    let entities = parse_document(
        r#"<entities>
             <person id="alice" start="0" end="4"/>
             <person id="bob" start="10" end="12"/>
             <place id="paris" start="17" end="21"/>
           </entities>"#,
    )
    .unwrap();
    let syntax = parse_document(
        r#"<syntax>
             <np start="0" end="4"/>
             <vp start="6" end="12"/>
             <pp start="14" end="21"/>
             <s start="0" end="31"/>
           </syntax>"#,
    )
    .unwrap();

    let mut set = LayerSet::build("corpus", base, StandoffConfig::default()).unwrap();
    set.add_layer("tokens", tokens, StandoffConfig::default())
        .unwrap();
    set.add_layer("entities", entities, StandoffConfig::default())
        .unwrap();
    set.add_layer("syntax", syntax, StandoffConfig::default())
        .unwrap();
    set
}

fn mounted_engine() -> Engine {
    let mut engine = Engine::new();
    engine.mount_store(corpus()).unwrap();
    engine
}

#[test]
fn doc_resolves_base_and_layers() {
    let mut engine = mounted_engine();
    assert_eq!(
        engine
            .run(r#"doc("corpus")/text/@lang"#)
            .unwrap()
            .as_strings(),
        ["en"]
    );
    assert_eq!(
        engine
            .run(r#"count(doc("corpus#tokens")//w)"#)
            .unwrap()
            .as_strings(),
        ["6"]
    );
    assert_eq!(
        engine
            .run(r#"count(layer("corpus", "entities")//person)"#)
            .unwrap()
            .as_strings(),
        ["2"]
    );
    // layer("corpus", "base") is the same node as doc("corpus").
    assert_eq!(
        engine
            .run(r#"count(layer("corpus", "base")/text)"#)
            .unwrap()
            .as_strings(),
        ["1"]
    );
}

/// The acceptance query: `entities` narrowed by `tokens`, across layers,
/// correct under the Basic and Loop-Lifted merge joins (and the naive
/// oracles).
#[test]
fn cross_layer_select_narrow_under_all_strategies() {
    for strategy in StandoffStrategy::ALL {
        let mut engine = mounted_engine();
        engine.set_strategy(strategy);
        let result = engine
            .run(r#"doc("corpus#entities")//person/select-narrow::w/@word"#)
            .unwrap();
        assert_eq!(result.as_strings(), ["Alice", "Bob"], "strategy {strategy}");
    }
}

#[test]
fn cross_layer_wide_and_reject() {
    for strategy in StandoffStrategy::ALL {
        let mut engine = mounted_engine();
        engine.set_strategy(strategy);
        // The prepositional phrase overlaps "in" and "Paris".
        assert_eq!(
            engine
                .run(r#"doc("corpus#syntax")//pp/select-wide::w/@word"#)
                .unwrap()
                .as_strings(),
            ["in", "Paris"],
            "strategy {strategy}"
        );
        // Tokens not inside any person annotation.
        assert_eq!(
            engine
                .run(r#"doc("corpus#entities")//person[@id = "alice"]/reject-narrow::w/@word"#)
                .unwrap()
                .as_strings(),
            ["met", "Bob", "in", "Paris", "yesterday"],
            "strategy {strategy}"
        );
    }
}

/// StandOff steps with an unrestricted node test look across every layer
/// of the group: the noun phrase [0,4] contains the token "Alice" and the
/// person annotation "alice".
#[test]
fn wildcard_step_spans_all_layers() {
    for strategy in StandoffStrategy::ALL {
        let mut engine = mounted_engine();
        engine.set_strategy(strategy);
        let result = engine
            .run(r#"count(doc("corpus#syntax")//np/select-narrow::*)"#)
            .unwrap();
        // np[0,4] itself, w "Alice" and person "alice".
        assert_eq!(result.as_strings(), ["3"], "strategy {strategy}");
    }
}

/// The builtin (Alternative 3) form with an explicit cross-layer
/// candidate sequence.
#[test]
fn builtin_with_explicit_cross_layer_candidates() {
    for strategy in StandoffStrategy::ALL {
        let mut engine = mounted_engine();
        engine.set_strategy(strategy);
        let result = engine
            .run(
                r#"select-narrow(doc("corpus#entities")//person,
                                 layer("corpus", "tokens")//w)/@word"#,
            )
            .unwrap();
        assert_eq!(result.as_strings(), ["Alice", "Bob"], "strategy {strategy}");
    }
}

/// A context drawn from several layers at once: rejects must complement
/// the union of the layers' selections, not union their complements.
#[test]
fn multi_layer_context_reject() {
    for strategy in StandoffStrategy::ALL {
        let mut engine = mounted_engine();
        engine.set_strategy(strategy);
        let result = engine
            .run(
                r#"(doc("corpus#entities")//person | doc("corpus#tokens")//w[@word = "met"])
                   /reject-wide::w/@word"#,
            )
            .unwrap();
        assert_eq!(
            result.as_strings(),
            ["in", "Paris", "yesterday"],
            "strategy {strategy}"
        );
    }
}

/// Tokens inside syntax constituents, FLWOR-composed — the loop-lifted
/// path (one merge join for all iterations of the for-loop).
#[test]
fn loop_lifted_cross_layer_flwor() {
    for strategy in [
        StandoffStrategy::BasicMergeJoin,
        StandoffStrategy::LoopLiftedMergeJoin,
    ] {
        let mut engine = mounted_engine();
        engine.set_strategy(strategy);
        let result = engine
            .run(
                r#"for $c in doc("corpus#syntax")//*[@start]
                   return count($c/select-narrow::w)"#,
            )
            .unwrap();
        // np:1 (Alice), vp:2 (met, Bob), pp:2 (in, Paris), s:6 (all).
        assert_eq!(
            result.as_strings(),
            ["1", "2", "2", "6"],
            "strategy {strategy}"
        );
    }
}

/// Mount → snapshot → remount: the reloaded store answers identically
/// (and its indices were never rebuilt — they come off the snapshot).
#[test]
fn snapshot_round_trip_preserves_query_results() {
    let mut direct = mounted_engine();
    let mut buf = Vec::new();
    write_snapshot(&corpus(), &mut buf).unwrap();
    let reloaded = read_snapshot(&mut buf.as_slice()).unwrap();
    let mut engine = Engine::new();
    engine.mount_store(reloaded).unwrap();

    for q in [
        r#"doc("corpus#entities")//person/select-narrow::w/@word"#,
        r#"doc("corpus#syntax")//pp/select-wide::w/@word"#,
        r#"count(doc("corpus#tokens")//w)"#,
    ] {
        assert_eq!(
            engine.run(q).unwrap().as_strings(),
            direct.run(q).unwrap().as_strings(),
            "{q}"
        );
    }
}

#[test]
fn mount_conflicts_and_unknown_layers_error() {
    let mut engine = mounted_engine();
    assert!(engine.mount_store(corpus()).is_err(), "duplicate mount");
    assert!(engine.run(r#"layer("corpus", "nope")"#).is_err());
    assert!(engine.run(r#"layer("nope", "tokens")"#).is_err());
}

#[test]
fn load_document_refuses_to_shadow_mounted_layers() {
    let mut engine = mounted_engine();
    assert!(engine.load_document("corpus", "<d/>").is_err());
    assert!(engine.load_document("corpus#tokens", "<d/>").is_err());
    // The mounted layers are untouched.
    assert_eq!(
        engine
            .run(r#"count(doc("corpus#tokens")//w)"#)
            .unwrap()
            .as_strings(),
        ["6"]
    );
}

#[test]
fn mount_refuses_to_shadow_derived_layer_uris() {
    let mut engine = Engine::new();
    // A plain document already sits at the URI a layer would derive.
    engine.load_document("corpus#tokens", "<mine/>").unwrap();
    assert!(engine.mount_store(corpus()).is_err());
    // Nothing was partially mounted: the bare URI stays free and the
    // pre-existing document is untouched.
    assert!(engine.run(r#"doc("corpus")"#).is_err());
    assert_eq!(
        engine
            .run(r#"count(doc("corpus#tokens")/mine)"#)
            .unwrap()
            .as_strings(),
        ["1"]
    );
}

/// Plain documents loaded the classic way are untouched by the layer
/// machinery: joins stay within their own fragment.
#[test]
fn unmounted_documents_keep_fragment_semantics() {
    let mut engine = mounted_engine();
    engine
        .load_document(
            "solo.xml",
            r#"<d><a start="0" end="31"/><b start="2" end="3"/></d>"#,
        )
        .unwrap();
    // The solo document's <a> must not see the corpus tokens, only its
    // own <b>.
    assert_eq!(
        engine
            .run(r#"count(doc("solo.xml")//a/select-narrow::*)"#)
            .unwrap()
            .as_strings(),
        ["2"] // a itself and b
    );
}
