//! Hostile query corpus: no input string may panic (or abort) the
//! lexer, parser, or evaluator.
//!
//! A long-lived query service evaluates untrusted query text; a panic in
//! one worker must never take down the pool. Every string below is fed
//! through parse + eval twice — sequentially on a plain [`Engine`] and
//! concurrently through the batch [`Executor`] — and must come back as a
//! proper `Err(QueryError)`.

use standoff_xquery::{Engine, Executor};

/// ~50 malformed, truncated, and adversarially nested query strings.
/// Every single one must fail: a parse error, a static error, or a
/// dynamic error — never a panic.
fn hostile_corpus() -> Vec<String> {
    let mut corpus: Vec<String> = [
        // Empty / whitespace / lone punctuation.
        "",
        "   \t\n  ",
        "(",
        ")",
        "]",
        "}",
        ";",
        ":",
        "::",
        ":=",
        "@",
        "@@",
        "..::x",
        // Truncated operators and clauses.
        "1 +",
        "1 *",
        "-",
        "+",
        "x union",
        "x intersect",
        "1 to",
        "1 = ",
        "1 2",
        "x/",
        "x//",
        "x/child::",
        "child::",
        "sideways::x",
        "x/::y",
        // Unterminated literals, comments, entities.
        "\"unterminated",
        "'still open",
        "\"a&unterminated",
        "\"&bogus;\"",
        "(: unclosed comment",
        "(: nested (: deeper :) still open",
        // Broken variables and declarations.
        "$",
        "$undeclared",
        "declare",
        "declare option",
        "declare option foo",
        "declare variable $x",
        "declare variable $x :=",
        "declare function f() {",
        "declare gizmo whirr; 1",
        "declare variable $q external; $q",
        // Broken constructors.
        "<",
        "<a",
        "<a/",
        "<a>",
        "<a attr>",
        "<a b=>",
        "<a b='x>",
        "<a>{</a>",
        "<a>}</a>",
        "<a>&bogus;</a>",
        "<a>&lt</a>",
        "<a></b>",
        "<1/>",
        // Control flow with missing limbs.
        "if (1) then 1",
        "for $x in",
        "for $x in 1",
        "let $x := 1",
        "some $x in",
        "every $x in 1 satisfies",
        // Dynamic failures.
        r#"doc("no-such-uri")//x"#,
        "unknown-function(1, 2)",
        "9999999999999999999999999999",
        "1 idiv 0",
        // Eval-side recursion bomb (recursion limit, not stack death).
        "declare function f($x) { f($x) }; f(1)",
        // Multibyte content in hostile positions.
        "\"🦀🦀🦀",
        "<ü>öäß",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    // Parser-side nesting bombs: without a depth limit these would
    // exhaust the stack and abort the process (uncatchable).
    corpus.push(format!("{}1", "(".repeat(50_000)));
    corpus.push(format!("{}1{}", "(".repeat(20_000), ")".repeat(20_000)));
    corpus.push(format!("{}1", "-".repeat(50_000)));
    corpus.push("<a>".repeat(20_000));
    corpus.push(format!("a{}", "[a[".repeat(20_000)));
    corpus.push("f(".repeat(20_000) + "1");
    corpus.push("for $x in ".repeat(10_000) + "1 return 1");
    corpus
}

fn engine_with_fixture() -> Engine {
    let mut engine = Engine::new();
    engine
        .load_document(
            "d.xml",
            r#"<a><w start="0" end="9"/><w start="3" end="5"/></a>"#,
        )
        .unwrap();
    engine
}

#[test]
fn every_hostile_query_errs_sequentially() {
    let mut engine = engine_with_fixture();
    for query in hostile_corpus() {
        let result = engine.run(&query);
        assert!(
            result.is_err(),
            "hostile query unexpectedly succeeded: {:?}",
            &query[..query.len().min(80)]
        );
    }
    // The engine survives the whole corpus and still answers real
    // queries.
    let ok = engine.run(r#"count(doc("d.xml")//w)"#).unwrap();
    assert_eq!(ok.as_strings(), ["2"]);
}

#[test]
fn every_hostile_query_errs_through_the_batch_executor() {
    let corpus = hostile_corpus();
    for threads in [1, 4] {
        let exec = Executor::new(engine_with_fixture().into_shared(), threads);
        let results = exec.run_batch(&corpus);
        assert_eq!(results.len(), corpus.len());
        for (query, result) in corpus.iter().zip(&results) {
            assert!(
                result.is_err(),
                "hostile query unexpectedly succeeded under {threads} thread(s): {:?}",
                &query[..query.len().min(80)]
            );
        }
        // The pool survives: a well-formed query still runs afterwards.
        let ok = exec.run_batch(&[r#"count(doc("d.xml")//w)"#]);
        assert_eq!(ok[0].as_ref().unwrap().as_strings(), ["2"]);
    }
}

#[test]
fn truncation_sweep_never_panics() {
    // Every char-boundary prefix of a query that exercises strings,
    // entities, constructors, FLWOR, and multibyte text must lex, parse
    // and evaluate to *something* — Ok or Err, never a panic.
    let query = r#"declare option standoff-start "begin";
        for $w at $k in doc("d.xml")//w[@start < 5]
        order by $w/@end descending
        return <hit nr="{$k}">{"ünïcödé &amp; more", $w/select-wide::w}</hit>"#;
    let mut engine = engine_with_fixture();
    for (end, _) in query.char_indices() {
        let _ = engine.run(&query[..end]);
    }
    let _ = engine.run(query);
}
