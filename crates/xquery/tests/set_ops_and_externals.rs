//! `intersect` / `except` operators and external variables.

use standoff_algebra::Item;
use standoff_xquery::Engine;

fn run(e: &mut Engine, q: &str) -> Vec<String> {
    e.run(q)
        .unwrap_or_else(|err| panic!("query failed: {err}\n{q}"))
        .as_strings()
        .to_vec()
}

#[test]
fn intersect_and_except_by_identity() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><x id="1"/><x id="2"/><x id="3"/><x id="4"/></d>"#,
    )
    .unwrap();
    assert_eq!(
        run(
            &mut e,
            r#"(doc("d.xml")//x[position() < 3] intersect doc("d.xml")//x[position() > 1])/@id"#
        ),
        ["2"]
    );
    assert_eq!(
        run(
            &mut e,
            r#"(doc("d.xml")//x except doc("d.xml")//x[@id = "2"])/@id"#
        ),
        ["1", "3", "4"]
    );
    // except with disjoint rhs is identity; intersect with self is self.
    assert_eq!(
        run(&mut e, r#"count(doc("d.xml")//x except doc("d.xml")//d)"#),
        ["4"]
    );
    assert_eq!(
        run(
            &mut e,
            r#"count(doc("d.xml")//x intersect doc("d.xml")//x)"#
        ),
        ["4"]
    );
}

#[test]
fn wide_minus_narrow_via_except() {
    // The natural phrasing of "overlapping but not contained" — the
    // intron-dangling-reads query from the genomics example.
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><host start="0" end="10"/>
              <t id="inside" start="2" end="8"/>
              <t id="straddle" start="8" end="15"/></d>"#,
    )
    .unwrap();
    let r = run(
        &mut e,
        r#"(doc("d.xml")//host/select-wide::t
            except doc("d.xml")//host/select-narrow::t)/@id"#,
    );
    assert_eq!(r, ["straddle"]);
}

#[test]
fn intersect_respects_iterations() {
    let mut e = Engine::new();
    e.load_document("d.xml", r#"<d><x id="1"/><x id="2"/></d>"#)
        .unwrap();
    // Inside a loop, the set ops apply per iteration.
    let r = run(
        &mut e,
        r#"for $k in ("1", "2")
           return count(doc("d.xml")//x[@id = $k] intersect doc("d.xml")//x)"#,
    );
    assert_eq!(r, ["1", "1"]);
}

#[test]
fn external_variables_bind_values() {
    let mut e = Engine::new();
    e.bind_external_string("who", "person0");
    e.bind_external_integer("limit", 2);
    let q = r#"
        declare variable $who external;
        declare variable $limit external;
        (concat("hello ", $who), $limit * 10)"#;
    assert_eq!(run(&mut e, q), ["hello person0", "20"]);
}

#[test]
fn external_variable_sequences() {
    let mut e = Engine::new();
    e.bind_external(
        "xs",
        vec![Item::Integer(3), Item::Integer(1), Item::Integer(2)],
    );
    let q = r#"
        declare variable $xs external;
        (sum($xs), count($xs), max($xs))"#;
    assert_eq!(run(&mut e, q), ["6", "3", "3"]);
}

#[test]
fn unbound_external_is_a_static_error() {
    let mut e = Engine::new();
    let err = e
        .run("declare variable $missing external; $missing")
        .unwrap_err();
    assert!(err.to_string().contains("external variable"), "{err}");
}

#[test]
fn externals_parameterize_standoff_queries() {
    let mut e = Engine::new();
    e.load_document(
        "sample.xml",
        r#"<s><music artist="U2" start="0" end="31"/>
              <shot id="Intro" start="0" end="8"/>
              <shot id="Outro" start="64" end="94"/></s>"#,
    )
    .unwrap();
    e.bind_external_string("artist", "U2");
    let q = r#"
        declare variable $artist external;
        doc("sample.xml")//music[@artist = $artist]/select-narrow::shot/@id"#;
    assert_eq!(run(&mut e, q), ["Intro"]);
}

#[test]
fn string_builtins_extended() {
    let mut e = Engine::new();
    assert_eq!(
        run(&mut e, r#"substring-before("person0@host", "@")"#),
        ["person0"]
    );
    assert_eq!(
        run(&mut e, r#"substring-after("person0@host", "@")"#),
        ["host"]
    );
    assert_eq!(run(&mut e, r#"substring-before("nope", "@")"#), [""]);
    assert_eq!(run(&mut e, r#"translate("0:08", ":", "-")"#), ["0-08"]);
    assert_eq!(
        run(&mut e, r#"translate("abcd", "abc", "x")"#),
        ["xd"],
        "unmapped chars are dropped"
    );
    assert_eq!(run(&mut e, r#"tokenize(" two  words ")"#), ["two", "words"]);
    assert_eq!(run(&mut e, r#"count(tokenize(""))"#), ["0"]);
}
