//! End-to-end engine tests: XQuery semantics, the paper's example
//! queries, and strategy equivalence at the query level.

use standoff_core::StandoffStrategy;
use standoff_xquery::{Engine, EngineOptions};

/// The Figure 1 multimedia document (time positions in seconds).
const FIGURE1: &str = r#"<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>"#;

fn engine_with_figure1() -> Engine {
    let mut e = Engine::new();
    e.load_document("sample.xml", FIGURE1).unwrap();
    e
}

fn run(engine: &mut Engine, q: &str) -> Vec<String> {
    engine
        .run(q)
        .unwrap_or_else(|e| panic!("query failed: {e}\n  {q}"))
        .as_strings()
        .to_vec()
}

// ---------- plain XQuery semantics ----------

#[test]
fn arithmetic_and_literals() {
    let mut e = Engine::new();
    assert_eq!(run(&mut e, "1 + 2 * 3"), ["7"]);
    assert_eq!(run(&mut e, "(1 + 2) * 3"), ["9"]);
    assert_eq!(run(&mut e, "7 div 2"), ["3.5"]);
    assert_eq!(run(&mut e, "8 div 2"), ["4"]);
    assert_eq!(run(&mut e, "7 idiv 2"), ["3"]);
    assert_eq!(run(&mut e, "7 mod 2"), ["1"]);
    assert_eq!(run(&mut e, "-(3 + 4)"), ["-7"]);
    assert_eq!(run(&mut e, "\"con\" , \"cat\""), ["con", "cat"]);
}

#[test]
fn ranges_and_sequences() {
    let mut e = Engine::new();
    assert_eq!(run(&mut e, "1 to 4"), ["1", "2", "3", "4"]);
    assert_eq!(run(&mut e, "count(3 to 1)"), ["0"]);
    assert_eq!(run(&mut e, "count(())"), ["0"]);
    assert_eq!(run(&mut e, "count((1, 2, (3, 4)))"), ["4"]);
}

#[test]
fn flwor_basics() {
    let mut e = Engine::new();
    assert_eq!(
        run(&mut e, "for $x in (1, 2, 3) return $x * 10"),
        ["10", "20", "30"]
    );
    assert_eq!(
        run(&mut e, "for $x in (1, 2, 3) where $x >= 2 return $x"),
        ["2", "3"]
    );
    assert_eq!(
        run(&mut e, "for $x in (1, 2) let $y := $x + 10 return $y"),
        ["11", "12"]
    );
}

#[test]
fn paper_section41_nested_loop_example() {
    // The loop-lifting example from §4.1 of the paper.
    let mut e = Engine::new();
    let result = run(
        &mut e,
        r#"for $x in ("twenty", "thirty")
           for $y in ("one", "two")
           let $z := ($x, $y)
           return $z"#,
    );
    assert_eq!(
        result,
        ["twenty", "one", "twenty", "two", "thirty", "one", "thirty", "two"]
    );
}

#[test]
fn positional_at_variable() {
    let mut e = Engine::new();
    assert_eq!(
        run(
            &mut e,
            r#"for $x at $i in ("a", "b", "c") return concat($i, $x)"#
        ),
        ["1a", "2b", "3c"]
    );
}

#[test]
fn order_by() {
    let mut e = Engine::new();
    assert_eq!(
        run(&mut e, "for $x in (3, 1, 2) order by $x return $x"),
        ["1", "2", "3"]
    );
    assert_eq!(
        run(
            &mut e,
            "for $x in (3, 1, 2) order by $x descending return $x"
        ),
        ["3", "2", "1"]
    );
    // order by inside an outer loop sorts within each outer iteration.
    assert_eq!(
        run(
            &mut e,
            "for $g in (1, 2) return count(for $x in (3, 1) order by $x return $x)"
        ),
        ["2", "2"]
    );
}

#[test]
fn if_then_else_and_logic() {
    let mut e = Engine::new();
    assert_eq!(
        run(
            &mut e,
            "for $x in (1, 2, 3) return if ($x mod 2 = 0) then \"even\" else \"odd\""
        ),
        ["odd", "even", "odd"]
    );
    assert_eq!(run(&mut e, "true() and false()"), ["false"]);
    assert_eq!(run(&mut e, "true() or false()"), ["true"]);
    assert_eq!(run(&mut e, "not(())"), ["true"]);
}

#[test]
fn quantified_expressions() {
    let mut e = Engine::new();
    assert_eq!(
        run(&mut e, "some $x in (1, 2, 3) satisfies $x > 2"),
        ["true"]
    );
    assert_eq!(
        run(&mut e, "every $x in (1, 2, 3) satisfies $x > 2"),
        ["false"]
    );
    assert_eq!(run(&mut e, "every $x in () satisfies $x > 2"), ["true"]);
    assert_eq!(run(&mut e, "some $x in () satisfies $x > 2"), ["false"]);
}

#[test]
fn general_comparison_is_existential() {
    let mut e = Engine::new();
    assert_eq!(run(&mut e, "(1, 2, 3) = 3"), ["true"]);
    assert_eq!(run(&mut e, "(1, 2, 3) = 9"), ["false"]);
    assert_eq!(run(&mut e, "(1, 2) != (1, 2)"), ["true"]); // 1 != 2
}

#[test]
fn aggregates() {
    let mut e = Engine::new();
    assert_eq!(run(&mut e, "sum((1, 2, 3))"), ["6"]);
    assert_eq!(run(&mut e, "sum(())"), ["0"]);
    assert_eq!(run(&mut e, "avg((2, 4))"), ["3"]);
    assert_eq!(run(&mut e, "max((3, 1, 4, 1, 5))"), ["5"]);
    assert_eq!(run(&mut e, "min((3, 1, 4))"), ["1"]);
    assert_eq!(run(&mut e, "count(avg(()))"), ["0"]);
}

#[test]
fn string_functions() {
    let mut e = Engine::new();
    assert_eq!(run(&mut e, "concat(\"a\", \"b\", \"c\")"), ["abc"]);
    assert_eq!(run(&mut e, "contains(\"auction\", \"ct\")"), ["true"]);
    assert_eq!(run(&mut e, "starts-with(\"auction\", \"au\")"), ["true"]);
    assert_eq!(run(&mut e, "string-length(\"hello\")"), ["5"]);
    assert_eq!(run(&mut e, "substring(\"hello\", 2, 3)"), ["ell"]);
    assert_eq!(run(&mut e, "upper-case(\"abc\")"), ["ABC"]);
    assert_eq!(
        run(&mut e, "string-join((\"a\", \"b\", \"c\"), \"-\")"),
        ["a-b-c"]
    );
    assert_eq!(run(&mut e, "normalize-space(\"  a   b \")"), ["a b"]);
}

#[test]
fn distinct_values_and_reverse() {
    let mut e = Engine::new();
    assert_eq!(
        run(&mut e, "distinct-values((1, 2, 1, 3, 2))"),
        ["1", "2", "3"]
    );
    assert_eq!(run(&mut e, "reverse((1, 2, 3))"), ["3", "2", "1"]);
    assert_eq!(
        run(&mut e, "subsequence((1,2,3,4,5), 2, 3)"),
        ["2", "3", "4"]
    );
}

// ---------- paths ----------

#[test]
fn path_navigation() {
    let mut e = engine_with_figure1();
    assert_eq!(run(&mut e, r#"count(doc("sample.xml")//shot)"#), ["3"]);
    assert_eq!(
        run(&mut e, r#"doc("sample.xml")/sample/video/shot[1]/@id"#),
        ["Intro"]
    );
    assert_eq!(
        run(&mut e, r#"doc("sample.xml")//shot[@id = "Outro"]/@start"#),
        ["64"]
    );
    assert_eq!(
        run(&mut e, r#"count(doc("sample.xml")//shot/parent::video)"#),
        ["1"]
    );
    assert_eq!(
        run(&mut e, r#"doc("sample.xml")//music[last()]/@artist"#),
        ["Bach"]
    );
    assert_eq!(
        run(&mut e, r#"doc("sample.xml")//shot[position() = 2]/@id"#),
        ["Interview"]
    );
}

#[test]
fn reverse_and_sibling_axes() {
    let mut e = engine_with_figure1();
    assert_eq!(
        run(&mut e, r#"count(doc("sample.xml")//music/ancestor::*)"#),
        ["2"] // sample, audio
    );
    assert_eq!(
        run(
            &mut e,
            r#"doc("sample.xml")//shot[@id="Interview"]/following-sibling::shot/@id"#
        ),
        ["Outro"]
    );
    assert_eq!(
        run(
            &mut e,
            r#"doc("sample.xml")//shot[@id="Interview"]/preceding-sibling::shot/@id"#
        ),
        ["Intro"]
    );
}

#[test]
fn union_of_paths() {
    let mut e = engine_with_figure1();
    assert_eq!(
        run(
            &mut e,
            r#"count(doc("sample.xml")//shot | doc("sample.xml")//music)"#
        ),
        ["5"]
    );
}

// ---------- the paper's Table §3.1 ----------

#[test]
fn table_31_all_four_axes() {
    let mut e = engine_with_figure1();
    let u2 = r#"doc("sample.xml")//music[@artist = "U2"]"#;
    assert_eq!(
        run(&mut e, &format!("{u2}/select-narrow::shot/@id")),
        ["Intro"]
    );
    assert_eq!(
        run(&mut e, &format!("{u2}/select-wide::shot/@id")),
        ["Intro", "Interview"]
    );
    assert_eq!(
        run(&mut e, &format!("{u2}/reject-narrow::shot/@id")),
        ["Interview", "Outro"]
    );
    assert_eq!(
        run(&mut e, &format!("{u2}/reject-wide::shot/@id")),
        ["Outro"]
    );
}

#[test]
fn table_31_under_every_strategy() {
    for strategy in StandoffStrategy::ALL {
        let mut e = Engine::with_options(EngineOptions {
            strategy,
            ..Default::default()
        });
        e.load_document("sample.xml", FIGURE1).unwrap();
        let u2 = r#"doc("sample.xml")//music[@artist = "U2"]"#;
        assert_eq!(
            run(&mut e, &format!("{u2}/select-narrow::shot/@id")),
            ["Intro"],
            "select-narrow under {strategy}"
        );
        assert_eq!(
            run(&mut e, &format!("{u2}/reject-wide::shot/@id")),
            ["Outro"],
            "reject-wide under {strategy}"
        );
    }
}

#[test]
fn standoff_builtin_functions() {
    let mut e = engine_with_figure1();
    // Alternative 3: built-in functions, with and without candidates.
    assert_eq!(
        run(
            &mut e,
            r#"select-narrow(doc("sample.xml")//music[@artist = "U2"],
                             doc("sample.xml")//shot)/@id"#
        ),
        ["Intro"]
    );
    assert_eq!(
        run(
            &mut e,
            r#"select-wide(doc("sample.xml")//music[@artist = "U2"])/self::shot/@id"#
        ),
        ["Intro", "Interview"]
    );
}

// ---------- Figures 2 and 3: the UDF baselines run as real XQuery ----------

#[test]
fn figure2_udf_matches_builtin() {
    let mut e = engine_with_figure1();
    // The paper's Figure 2 function (no candidate sequence), verbatim
    // except for the document binding.
    let udf = r#"
        declare module standoff = "http://w3c.org/tr/standoff/"
        declare function my-select-narrow($input as xs:anyNode*)
          as xs:anyNode*
        {
          (for $q in $input
           for $p in root($q)//*
           where $p/@start >= $q/@start
             and $p/@end <= $q/@end
           return $p)/.
        }
        my-select-narrow(doc("sample.xml")//music[@artist = "U2"])/self::shot/@id"#;
    assert_eq!(run(&mut e, udf), ["Intro"]);
}

#[test]
fn figure3_udf_with_candidates_matches_builtin() {
    let mut e = engine_with_figure1();
    let udf = r#"
        declare function my-select-narrow($input as xs:anyNode*,
                                          $candidates as xs:anyNode*)
          as xs:anyNode*
        {
          (for $q in $input
           for $p in $candidates
           where $p/@start >= $q/@start
             and $p/@end <= $q/@end
             and root($p) is root($q)
           return $p)/.
        }
        my-select-narrow(doc("sample.xml")//music[@artist = "U2"],
                         doc("sample.xml")//shot)/@id"#;
    assert_eq!(run(&mut e, udf), ["Intro"]);
}

// ---------- configurable representation (§2) ----------

#[test]
fn custom_attribute_names_via_options() {
    let mut e = Engine::new();
    e.load_document(
        "d.xml",
        r#"<d><a from="0" to="10"/><b from="2" to="5"/></d>"#,
    )
    .unwrap();
    let q = r#"
        declare option standoff-start "from";
        declare option standoff-end "to";
        count(doc("d.xml")//a/select-narrow::b)"#;
    assert_eq!(run(&mut e, q), ["1"]);
    // Without the options nothing is annotated: empty join.
    assert_eq!(
        run(&mut e, r#"count(doc("d.xml")//a/select-narrow::b)"#),
        ["0"]
    );
}

#[test]
fn element_representation_via_options() {
    let mut e = Engine::new();
    e.load_document(
        "fs.xml",
        "<fs>\
           <file name=\"big\">\
             <region><start>0</start><end>99</end></region>\
             <region><start>200</start><end>299</end></region>\
           </file>\
           <block name=\"inside\"><region><start>10</start><end>20</end></region></block>\
           <block name=\"gap\"><region><start>120</start><end>130</end></region></block>\
           <block name=\"split\">\
             <region><start>50</start><end>60</end></region>\
             <region><start>210</start><end>220</end></region>\
           </block>\
         </fs>",
    )
    .unwrap();
    let prolog = r#"declare option standoff-region "region";"#;
    // Containment of multi-region areas is ∀∃: "split" has both pieces
    // inside pieces of "big"; "gap" falls between them.
    assert_eq!(
        run(
            &mut e,
            &format!(r#"{prolog} doc("fs.xml")//file/select-narrow::block/@name"#)
        ),
        ["inside", "split"]
    );
    assert_eq!(
        run(
            &mut e,
            &format!(r#"{prolog} doc("fs.xml")//file/reject-narrow::block/@name"#)
        ),
        ["gap"]
    );
}

// ---------- constructors ----------

#[test]
fn element_construction() {
    let mut e = Engine::new();
    let r = e.run(r#"<result n="{1+2}">{ 40 + 2 }</result>"#).unwrap();
    assert_eq!(r.as_xml(), r#"<result n="3">42</result>"#);
}

#[test]
fn constructor_copies_nodes() {
    let mut e = engine_with_figure1();
    let r = e
        .run(r#"<shots>{ doc("sample.xml")//shot[@id = "Intro"] }</shots>"#)
        .unwrap();
    assert_eq!(
        r.as_xml(),
        r#"<shots><shot id="Intro" start="0" end="8"/></shots>"#
    );
}

#[test]
fn constructor_in_flwor_builds_one_element_per_iteration() {
    let mut e = Engine::new();
    let r = e.run("for $i in (1, 2, 3) return <n v=\"{$i}\"/>").unwrap();
    assert_eq!(r.as_xml(), r#"<n v="1"/><n v="2"/><n v="3"/>"#);
}

#[test]
fn nested_constructors_and_atom_spacing() {
    let mut e = Engine::new();
    let r = e.run("<a><b>{ (1, 2) }</b><c/></a>").unwrap();
    assert_eq!(r.as_xml(), "<a><b>1 2</b><c/></a>");
}

// ---------- user-defined functions ----------

#[test]
fn recursive_udf_terminates() {
    let mut e = Engine::new();
    let q = r#"
        declare function fact($n) {
          if ($n <= 1) then 1 else $n * fact($n - 1)
        };
        fact(6)"#;
    assert_eq!(run(&mut e, q), ["720"]);
}

#[test]
fn runaway_recursion_is_caught() {
    let mut e = Engine::new();
    let q = r#"
        declare function loop($n) { loop($n + 1) };
        loop(1)"#;
    let err = e.run(q).unwrap_err();
    assert!(err.to_string().contains("recursion limit"), "{err}");
}

#[test]
fn udf_sees_globals_but_not_caller_locals() {
    let mut e = Engine::new();
    let q = r#"
        declare variable $g := 100;
        declare function add-g($x) { $x + $g };
        for $local in (1, 2) return add-g($local)"#;
    assert_eq!(run(&mut e, q), ["101", "102"]);

    let bad = r#"
        declare function f() { $hidden };
        let $hidden := 5 return f()"#;
    assert!(e.run(bad).is_err(), "caller locals must not leak into UDFs");
}

// ---------- error reporting ----------

#[test]
fn missing_document_is_dynamic_error() {
    let mut e = Engine::new();
    let err = e.run(r#"doc("nope.xml")"#).unwrap_err();
    assert!(err.to_string().contains("not found"), "{err}");
}

#[test]
fn undeclared_variable_is_static_error() {
    let mut e = Engine::new();
    let err = e.run("$nope").unwrap_err();
    assert!(err.to_string().contains("undeclared variable"), "{err}");
}

#[test]
fn unknown_function_is_static_error() {
    let mut e = Engine::new();
    let err = e.run("frobnicate(1)").unwrap_err();
    assert!(err.to_string().contains("unknown function"), "{err}");
}

#[test]
fn division_by_zero() {
    let mut e = Engine::new();
    assert!(e.run("1 idiv 0").is_err());
}

// ---------- loop-lifting depth ----------

#[test]
fn deeply_nested_loops() {
    let mut e = Engine::new();
    // 4 nested loops over 4 items = 256 innermost iterations.
    let q = r#"
        count(for $a in 1 to 4
              for $b in 1 to 4
              for $c in 1 to 4
              for $d in 1 to 4
              return $a * $b * $c * $d)"#;
    assert_eq!(run(&mut e, q), ["256"]);
}

#[test]
fn variable_lifting_across_scopes() {
    let mut e = Engine::new();
    // $x referenced two scopes down.
    let q = "for $x in (1, 2) return for $y in (10, 20) return $x + $y";
    assert_eq!(run(&mut e, q), ["11", "21", "12", "22"]);
}

#[test]
fn standoff_step_inside_nested_loops() {
    // The shape that separates basic from loop-lifted merge joins.
    let mut e = engine_with_figure1();
    let q = r#"
        for $m in doc("sample.xml")//music
        return count($m/select-wide::shot)"#;
    assert_eq!(run(&mut e, q), ["2", "2"]); // U2: Intro+Interview; Bach: Interview+Outro
}
